"""Tests for the temperature override, seasonal-naive method, JSON tables."""

import numpy as np
import pytest

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster
from repro.data import synthetic_multivariate
from repro.evaluation import TableResult, evaluate_method, run_method
from repro.exceptions import ConfigError, DataError


class TestTemperatureOverride:
    def test_validation(self):
        MultiCastConfig(temperature=0.0)
        MultiCastConfig(temperature=1.3)
        with pytest.raises(ConfigError):
            MultiCastConfig(temperature=-0.1)

    def test_greedy_decoding_is_deterministic_across_seeds(self):
        history = synthetic_multivariate(n=90, num_dims=2, seed=0).values
        config = MultiCastConfig(num_samples=1, temperature=0.0)
        a = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=6, seed=1)
        )
        b = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=6, seed=2)
        )
        assert np.allclose(a.values, b.values)

    def test_none_uses_preset_temperature(self):
        history = synthetic_multivariate(n=90, num_dims=2, seed=3).values
        config = MultiCastConfig(num_samples=1, temperature=None)
        a = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=6, seed=1)
        )
        b = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=6, seed=2)
        )
        assert not np.allclose(a.values, b.values)  # stochastic preset

    def test_low_temperature_reduces_sample_spread(self):
        history = synthetic_multivariate(n=90, num_dims=1, seed=4).values
        hot = MultiCastForecaster().forecast(
            ForecastSpec(series=history, horizon=8, num_samples=6, temperature=1.5)
        )
        cold = MultiCastForecaster().forecast(
            ForecastSpec(series=history, horizon=8, num_samples=6, temperature=0.2)
        )
        assert cold.samples.std(axis=0).mean() < hot.samples.std(axis=0).mean()


class TestSeasonalNaiveMethod:
    def test_exact_on_periodic_series(self):
        t = np.arange(96.0)
        series = np.sin(2 * np.pi * t / 8.0)[:, None]
        forecast = run_method("seasonal-naive", series[:88], 8, period=8)
        assert np.allclose(forecast, series[88:], atol=1e-9)

    def test_auto_period_detection(self):
        t = np.arange(120.0)
        series = np.stack(
            [np.sin(2 * np.pi * t / 12.0), np.cos(2 * np.pi * t / 12.0)], axis=1
        )
        forecast = run_method("seasonal-naive", series[:108], 12)
        assert np.sqrt(np.mean((forecast - series[108:]) ** 2)) < 0.2

    def test_registered_in_harness(self):
        dataset = synthetic_multivariate(n=100, num_dims=2, seed=5)
        result = evaluate_method("seasonal-naive", dataset)
        assert set(result.rmse_per_dim) == {"x0", "x1"}


class TestTableJson:
    def _table(self):
        table = TableResult(
            "Table X", "demo", ["Model", "a", "b"], notes=["a note"]
        )
        table.add_row("m1", 1.5, "N/A")
        table.add_row("m2", 2.5, 3.5)
        return table

    def test_round_trip(self, tmp_path):
        path = tmp_path / "table.json"
        original = self._table()
        original.save_json(path)
        loaded = TableResult.load_json(path)
        assert loaded.table_id == original.table_id
        assert loaded.header == original.header
        assert loaded.rows == original.rows
        assert loaded.notes == original.notes
        assert loaded.cell("m1", "b") == "N/A"
        assert loaded.cell("m2", "a") == 2.5

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            TableResult.load_json(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DataError):
            TableResult.load_json(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"rows": []}')
        with pytest.raises(DataError):
            TableResult.load_json(path)

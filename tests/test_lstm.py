"""Tests for the from-scratch numpy LSTM, including a numerical gradient check."""

import numpy as np
import pytest

from repro.baselines import LSTMForecaster, LSTMNetwork
from repro.baselines.lstm import AdamOptimizer, _clip_gradients
from repro.exceptions import FittingError
from repro.metrics import rmse


class TestNetworkShapes:
    def test_forward_output_shape(self):
        net = LSTMNetwork(input_size=3, hidden_size=8, output_size=3, seed=0)
        windows = np.random.default_rng(0).normal(size=(5, 7, 3))
        predictions, cache = net.forward(windows)
        assert predictions.shape == (5, 3)
        assert cache["time"] == 7

    def test_predict_matches_forward_without_dropout(self):
        net = LSTMNetwork(input_size=2, hidden_size=4, output_size=2, seed=1)
        windows = np.random.default_rng(1).normal(size=(3, 5, 2))
        predictions, _ = net.forward(windows, dropout=0.0)
        assert np.allclose(net.predict(windows), predictions)

    def test_dropout_requires_rng(self):
        net = LSTMNetwork(input_size=2, hidden_size=4, output_size=1)
        with pytest.raises(FittingError):
            net.forward(np.zeros((1, 3, 2)), dropout=0.5)

    def test_wrong_input_size_rejected(self):
        net = LSTMNetwork(input_size=2, hidden_size=4, output_size=1)
        with pytest.raises(FittingError):
            net.forward(np.zeros((1, 3, 5)))

    def test_forget_gate_bias_initialised_to_one(self):
        net = LSTMNetwork(input_size=2, hidden_size=4, output_size=1)
        assert np.allclose(net.params["b"][4:8], 1.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(FittingError):
            LSTMNetwork(input_size=0, hidden_size=4, output_size=1)


class TestGradientCheck:
    """Backward pass vs central finite differences, to ~1e-6 relative error."""

    def _loss_and_grads(self, net, windows, targets):
        predictions, cache = net.forward(windows)
        error = predictions - targets
        loss = float((error**2).sum())
        grads = net.backward(2.0 * error, cache)
        return loss, grads

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(42)
        net = LSTMNetwork(input_size=2, hidden_size=3, output_size=2, seed=7)
        windows = rng.normal(size=(4, 5, 2))
        targets = rng.normal(size=(4, 2))
        _, analytic = self._loss_and_grads(net, windows, targets)

        epsilon = 1e-6
        for name, param in net.params.items():
            flat = param.ravel()
            # Probe a handful of entries per tensor.
            indices = rng.choice(flat.size, size=min(12, flat.size), replace=False)
            for idx in indices:
                original = flat[idx]
                flat[idx] = original + epsilon
                loss_plus, _ = self._loss_and_grads(net, windows, targets)
                flat[idx] = original - epsilon
                loss_minus, _ = self._loss_and_grads(net, windows, targets)
                flat[idx] = original
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                analytic_value = analytic[name].ravel()[idx]
                assert analytic_value == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), f"{name}[{idx}]"


class TestAdam:
    def test_descends_a_quadratic(self):
        params = {"x": np.array([5.0])}
        optimizer = AdamOptimizer(learning_rate=0.1)
        for _ in range(500):
            grads = {"x": 2.0 * params["x"]}
            optimizer.update(params, grads)
        assert abs(params["x"][0]) < 0.05

    def test_invalid_learning_rate(self):
        with pytest.raises(FittingError):
            AdamOptimizer(learning_rate=0.0)


class TestClipGradients:
    def test_large_gradients_scaled_to_norm(self):
        grads = {"a": np.array([30.0, 40.0])}
        _clip_gradients(grads, max_norm=5.0)
        assert np.linalg.norm(grads["a"]) == pytest.approx(5.0)

    def test_small_gradients_untouched(self):
        grads = {"a": np.array([0.3, 0.4])}
        _clip_gradients(grads, max_norm=5.0)
        assert np.allclose(grads["a"], [0.3, 0.4])


class TestForecaster:
    def test_loss_decreases_during_training(self):
        t = np.arange(120.0)
        series = np.stack([np.sin(t / 5.0), np.cos(t / 5.0)], axis=1)
        model = LSTMForecaster(
            window=8, hidden_size=16, epochs=15, dropout=0.0, seed=0
        ).fit(series)
        assert model.loss_history[-1] < model.loss_history[0] / 2

    def test_learns_a_sine_wave(self):
        t = np.arange(220.0)
        series = np.sin(2 * np.pi * t / 20.0)[:, None]
        train, test = series[:200], series[200:]
        model = LSTMForecaster(
            window=20, hidden_size=24, epochs=60, dropout=0.0, seed=1,
            learning_rate=5e-3,
        ).fit(train)
        forecast = model.forecast(20)
        assert rmse(test, forecast) < 0.45  # well under the signal amplitude

    def test_multivariate_forecast_shape(self):
        rng = np.random.default_rng(2)
        series = rng.normal(size=(60, 3))
        model = LSTMForecaster(window=6, hidden_size=8, epochs=2, seed=2).fit(series)
        assert model.forecast(7).shape == (7, 3)

    def test_univariate_input_promoted(self):
        series = np.sin(np.arange(50.0) / 3.0)
        model = LSTMForecaster(window=5, hidden_size=8, epochs=2).fit(series)
        assert model.forecast(3).shape == (3, 1)

    def test_deterministic_for_fixed_seed(self):
        series = np.sin(np.arange(60.0) / 4.0)[:, None]
        a = LSTMForecaster(window=5, hidden_size=8, epochs=3, seed=5).fit(series)
        b = LSTMForecaster(window=5, hidden_size=8, epochs=3, seed=5).fit(series)
        assert np.allclose(a.forecast(5), b.forecast(5))

    def test_forecast_before_fit_raises(self):
        with pytest.raises(FittingError):
            LSTMForecaster().forecast(5)

    def test_history_shorter_than_window_rejected(self):
        with pytest.raises(FittingError):
            LSTMForecaster(window=50).fit(np.zeros((20, 1)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(FittingError):
            LSTMForecaster(window=0)
        with pytest.raises(FittingError):
            LSTMForecaster(dropout=1.0)
        with pytest.raises(FittingError):
            LSTMForecaster(epochs=0)
        with pytest.raises(FittingError):
            LSTMForecaster(batch_size=0)

    def test_paper_configuration_is_default(self):
        model = LSTMForecaster()
        assert model.hidden_size == 128
        assert model.dropout == pytest.approx(0.2)
        assert model.epochs == 30

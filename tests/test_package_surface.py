"""Tests for the top-level package surface and remaining figure drivers."""

import numpy as np
import pytest


class TestTopLevelApi:
    def test_headline_imports(self):
        from repro import (
            ForecastEngine,
            ForecastOutput,
            ForecastSpec,
            MultiCastConfig,
            MultiCastForecaster,
            ReproError,
            SaxConfig,
            Tracer,
            plan_forecast,
        )

        assert callable(plan_forecast)
        assert issubclass(ReproError, Exception)
        del (
            ForecastEngine,
            ForecastOutput,
            ForecastSpec,
            MultiCastConfig,
            MultiCastForecaster,
            SaxConfig,
            Tracer,
        )

    def test_package_docstring_example_runs(self):
        from repro import ForecastSpec, MultiCastForecaster
        from repro.data import gas_rate

        history, future = gas_rate().train_test_split()
        spec = ForecastSpec(
            series=history,
            horizon=len(future),
            scheme="vi",
            num_samples=2,
        )
        output = MultiCastForecaster().forecast(spec)
        assert output.values.shape == future.shape

    def test_legacy_forecast_call_warns_but_matches(self):
        from repro import ForecastSpec, MultiCastConfig, MultiCastForecaster
        from repro.data import gas_rate

        history, future = gas_rate().train_test_split()
        config = MultiCastConfig(scheme="vi", num_samples=2)
        with pytest.warns(DeprecationWarning, match="ForecastSpec"):
            legacy = MultiCastForecaster(config).forecast(
                history, horizon=len(future)
            )
        spec = ForecastSpec.from_config(
            config, series=history, horizon=len(future)
        )
        modern = MultiCastForecaster().forecast(spec)
        assert np.array_equal(legacy.values, modern.values)

    def test_version_is_exposed(self):
        import repro

        assert repro.__version__ == "1.3.0"

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_curated(self):
        import repro

        assert sorted(repro.__all__) == sorted(
            [
                "ForecastSpec",
                "Estimator",
                "BaseEstimator",
                "MultiCastEstimator",
                "ForecastingHorizon",
                "make_estimator",
                "available_estimators",
                "SweepSpec",
                "SweepRunner",
                "SweepReport",
                "MultiCastConfig",
                "MultiCastForecaster",
                "SaxConfig",
                "ForecastOutput",
                "PromptStrategy",
                "PROMPT_STRATEGIES",
                "ForecastEngine",
                "ForecastRequest",
                "ForecastResponse",
                "ContinuousScheduler",
                "RadixPrefillTree",
                "Tracer",
                "RunLedger",
                "plan_forecast",
                "ReproError",
                "ConfigError",
                "DataError",
                "EncodingError",
                "FittingError",
                "GenerationError",
                "ScalingError",
                "__version__",
            ]
        )

    def test_llm_surface_exposes_batching(self):
        from repro.llm import (
            BatchedDecoder,
            filter_distribution,
            mask_for_ids,
        )

        assert callable(filter_distribution)
        assert callable(mask_for_ids)
        del BatchedDecoder

    def test_core_surface_exposes_spec(self):
        import repro.core

        assert "ForecastSpec" in repro.core.__all__
        assert "EXECUTION_MODES" in repro.core.__all__

    def test_scheduling_surface(self):
        import repro.scheduling
        from repro.core.spec import EXECUTION_MODES

        assert "continuous" in EXECUTION_MODES
        for name in (
            "ContinuousScheduler",
            "RadixPrefillTree",
            "PrefillResult",
            "RadixLookup",
            "ScheduledDecode",
        ):
            assert name in repro.scheduling.__all__
            assert hasattr(repro.scheduling, name)


class TestRemainingFigures:
    """Figures 4, 5, 7 — the drivers not covered by test_experiments."""

    def test_figure_4_lstm_overlay(self):
        from repro.experiments import figure_4

        figure = figure_4(num_samples=2)
        assert set(figure.forecasts) == {"multicast-vc", "lstm"}
        assert np.isfinite(figure.forecasts["lstm"]).all()

    def test_figure_5_arima_overlay(self):
        from repro.experiments import figure_5

        figure = figure_5(num_samples=2)
        assert set(figure.forecasts) == {"multicast-vi", "arima"}
        assert figure.dimension == "Tlog"

    def test_figure_7_alphabet_levels(self):
        from repro.experiments import figure_7

        # Odd sample count: the median of an odd ensemble is an actual SAX
        # level; an even count would average two levels into a midpoint.
        figure = figure_7(num_samples=3)
        for size in (5, 10, 20):
            levels = np.unique(np.round(figure.forecasts[f"sax-a{size}"], 6))
            assert levels.size <= size


class TestCliTableAndFigureVariants:
    def test_cli_table_iii(self, capsys):
        from repro.cli import main

        assert main(["table", "iii", "--num-samples", "2"]) == 0
        assert "LLaMA2" in capsys.readouterr().out

    def test_cli_figure_6(self, capsys):
        from repro.cli import main

        assert main(["figure", "6", "--num-samples", "2"]) == 0
        assert "sax-w3" in capsys.readouterr().out

    def test_cli_legacy_samples_flag_warns(self, capsys):
        from repro.cli import main

        with pytest.warns(DeprecationWarning, match="num_samples"):
            assert main(["figure", "6", "--samples", "2"]) == 0
        assert "sax-w3" in capsys.readouterr().out

"""Tests for the top-level package surface and remaining figure drivers."""

import numpy as np


class TestTopLevelApi:
    def test_headline_imports(self):
        from repro import (
            ForecastOutput,
            MultiCastConfig,
            MultiCastForecaster,
            ReproError,
            SaxConfig,
            plan_forecast,
        )

        assert callable(plan_forecast)
        assert issubclass(ReproError, Exception)
        del ForecastOutput, MultiCastConfig, MultiCastForecaster, SaxConfig

    def test_package_docstring_example_runs(self):
        from repro import MultiCastConfig, MultiCastForecaster
        from repro.data import gas_rate

        history, future = gas_rate().train_test_split()
        forecaster = MultiCastForecaster(
            MultiCastConfig(scheme="vi", num_samples=2)
        )
        output = forecaster.forecast(history, horizon=len(future))
        assert output.values.shape == future.shape

    def test_version_is_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestRemainingFigures:
    """Figures 4, 5, 7 — the drivers not covered by test_experiments."""

    def test_figure_4_lstm_overlay(self):
        from repro.experiments import figure_4

        figure = figure_4(num_samples=2)
        assert set(figure.forecasts) == {"multicast-vc", "lstm"}
        assert np.isfinite(figure.forecasts["lstm"]).all()

    def test_figure_5_arima_overlay(self):
        from repro.experiments import figure_5

        figure = figure_5(num_samples=2)
        assert set(figure.forecasts) == {"multicast-vi", "arima"}
        assert figure.dimension == "Tlog"

    def test_figure_7_alphabet_levels(self):
        from repro.experiments import figure_7

        # Odd sample count: the median of an odd ensemble is an actual SAX
        # level; an even count would average two levels into a midpoint.
        figure = figure_7(num_samples=3)
        for size in (5, 10, 20):
            levels = np.unique(np.round(figure.forecasts[f"sax-a{size}"], 6))
            assert levels.size <= size


class TestCliTableAndFigureVariants:
    def test_cli_table_iii(self, capsys):
        from repro.cli import main

        assert main(["table", "iii", "--samples", "2"]) == 0
        assert "LLaMA2" in capsys.readouterr().out

    def test_cli_figure_6(self, capsys):
        from repro.cli import main

        assert main(["figure", "6", "--samples", "2"]) == 0
        assert "sax-w3" in capsys.readouterr().out

"""Tests for probabilistic metrics and ForecastOutput quantiles/intervals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ForecastOutput, ForecastSpec, MultiCastForecaster
from repro.data import synthetic_multivariate
from repro.exceptions import DataError
from repro.metrics import (
    crps_from_samples,
    interval_coverage,
    pinball_loss,
    sample_quantiles,
    winkler_score,
)


class TestPinball:
    def test_median_pinball_is_half_mae(self):
        y = np.array([1.0, 2.0, 3.0])
        q = np.array([2.0, 2.0, 2.0])
        assert pinball_loss(y, q, 0.5) == pytest.approx(
            0.5 * np.mean(np.abs(y - q))
        )

    def test_asymmetry(self):
        y = np.array([10.0])
        low_forecast = np.array([5.0])  # under-forecast costs q
        assert pinball_loss(y, low_forecast, 0.9) == pytest.approx(4.5)
        assert pinball_loss(y, low_forecast, 0.1) == pytest.approx(0.5)

    def test_perfect_quantile_zero(self):
        y = np.array([1.0, 2.0])
        assert pinball_loss(y, y, 0.3) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            pinball_loss([1.0], [1.0], 0.0)
        with pytest.raises(DataError):
            pinball_loss([1.0], [1.0, 2.0], 0.5)
        with pytest.raises(DataError):
            pinball_loss([], [], 0.5)

    def test_true_quantile_minimises_pinball(self):
        """Proper-scoring sanity: the q-quantile of the data minimises loss."""
        rng = np.random.default_rng(0)
        y = rng.normal(size=4000)
        q = 0.8
        true_q = np.quantile(y, q)
        best = pinball_loss(y, np.full_like(y, true_q), q)
        for offset in (-0.5, 0.5):
            worse = pinball_loss(y, np.full_like(y, true_q + offset), q)
            assert best < worse


class TestCoverage:
    def test_full_coverage(self):
        y = np.array([1.0, 2.0])
        assert interval_coverage(y, y - 1, y + 1) == 1.0

    def test_partial_coverage(self):
        y = np.array([0.0, 10.0])
        assert interval_coverage(y, np.array([-1.0, -1.0]), np.array([1.0, 1.0])) == 0.5

    def test_inverted_bounds_rejected(self):
        with pytest.raises(DataError):
            interval_coverage([1.0], [2.0], [0.0])


class TestWinkler:
    def test_inside_equals_width(self):
        y = np.array([5.0])
        assert winkler_score(y, np.array([4.0]), np.array([6.0]), level=0.8) == pytest.approx(2.0)

    def test_escape_penalised(self):
        y = np.array([10.0])
        inside = winkler_score(np.array([5.0]), np.array([4.0]), np.array([6.0]))
        outside = winkler_score(y, np.array([4.0]), np.array([6.0]))
        assert outside > inside

    def test_penalty_scales_with_level(self):
        y = np.array([10.0])
        lo, hi = np.array([4.0]), np.array([6.0])
        assert winkler_score(y, lo, hi, level=0.95) > winkler_score(y, lo, hi, level=0.5)

    def test_validation(self):
        with pytest.raises(DataError):
            winkler_score([1.0], [0.0], [2.0], level=1.0)


class TestCrps:
    def test_point_mass_on_truth_gives_zero(self):
        y = np.array([3.0, 4.0])
        samples = np.tile(y, (5, 1))
        assert crps_from_samples(y, samples) == pytest.approx(0.0)

    def test_sharper_calibrated_ensemble_scores_better(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=200)
        tight = y[None, :] + 0.1 * rng.normal(size=(50, 200))
        wide = y[None, :] + 2.0 * rng.normal(size=(50, 200))
        assert crps_from_samples(y, tight) < crps_from_samples(y, wide)

    def test_biased_ensemble_scores_worse(self):
        rng = np.random.default_rng(2)
        y = np.zeros(200)
        calibrated = 0.5 * rng.normal(size=(50, 200))
        biased = 3.0 + 0.5 * rng.normal(size=(50, 200))
        assert crps_from_samples(y, calibrated) < crps_from_samples(y, biased)

    def test_matches_analytic_gaussian_value(self):
        # CRPS of N(0,1) vs y=0 is sigma * (2/sqrt(2pi) - 1/sqrt(pi)) ~ 0.2337.
        rng = np.random.default_rng(3)
        samples = rng.normal(size=(8000, 1))
        value = crps_from_samples(np.zeros(1), samples)
        assert value == pytest.approx(0.2337, abs=0.02)

    def test_validation(self):
        with pytest.raises(DataError):
            crps_from_samples(np.zeros(3), np.zeros((1, 3)))
        with pytest.raises(DataError):
            crps_from_samples(np.zeros(3), np.zeros((4, 2)))


class TestSampleQuantiles:
    def test_shape_and_order(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(size=(40, 6, 2))
        quantiles = sample_quantiles(samples, [0.1, 0.5, 0.9])
        assert quantiles.shape == (3, 6, 2)
        assert (quantiles[0] <= quantiles[1]).all()
        assert (quantiles[1] <= quantiles[2]).all()

    def test_invalid_quantile_rejected(self):
        with pytest.raises(DataError):
            sample_quantiles(np.zeros((3, 2)), [1.5])


class TestForecastOutputIntervals:
    def _output(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(size=(40, 8, 2))
        return ForecastOutput(values=np.median(samples, axis=0), samples=samples)

    def test_quantiles_are_ordered(self):
        output = self._output()
        assert (output.quantile(0.1) <= output.quantile(0.9)).all()

    def test_interval_brackets_the_median(self):
        output = self._output()
        lower, upper = output.interval(0.8)
        assert (lower <= output.quantile(0.5)).all()
        assert (output.quantile(0.5) <= upper).all()

    def test_invalid_args(self):
        output = self._output()
        with pytest.raises(DataError):
            output.quantile(1.5)
        with pytest.raises(DataError):
            output.interval(1.0)

    def test_end_to_end_interval_coverage(self):
        """The ensemble from a real forecast gives a usable central band."""
        dataset = synthetic_multivariate(n=150, num_dims=2, seed=0)
        history, future = dataset.train_test_split(0.2)
        output = MultiCastForecaster().forecast(
            ForecastSpec(series=history, horizon=len(future), num_samples=9)
        )
        lower, upper = output.interval(0.8)
        coverage = interval_coverage(future, lower, upper)
        assert 0.05 < coverage <= 1.0  # non-degenerate band


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40),
    st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=40)
def test_pinball_nonnegative_property(ys, q):
    y = np.asarray(ys)
    forecast = np.full_like(y, float(np.median(y)))
    assert pinball_loss(y, forecast, q) >= 0.0

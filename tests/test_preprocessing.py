"""Tests for dataset preprocessing: resample, fill_missing, differencing."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    difference_dataset,
    fill_missing,
    gas_rate,
    resample,
)
from repro.exceptions import DataError


class TestResample:
    def _dataset(self, n=24):
        values = np.stack([np.arange(float(n)), 10.0 * np.arange(float(n))], axis=1)
        return Dataset("toy", values, ("a", "b"))

    def test_mean_of_blocks(self):
        resampled = resample(self._dataset(), factor=3)
        assert resampled.values.shape == (8, 2)
        assert resampled.values[0, 0] == pytest.approx(1.0)  # mean of 0,1,2
        assert resampled.values[0, 1] == pytest.approx(10.0)

    def test_trailing_partial_block(self):
        resampled = resample(self._dataset(n=25), factor=3)
        assert resampled.values.shape == (9, 2)
        assert resampled.values[-1, 0] == pytest.approx(24.0)  # lone element

    def test_paper_style_3day_resample_of_hourly(self):
        """The ETDataset preparation: hourly -> 3-day means (factor 72)."""
        rng = np.random.default_rng(0)
        hourly = Dataset("etth", rng.normal(size=(72 * 10, 1)), ("OT",))
        resampled = resample(hourly, factor=72)
        assert resampled.num_timestamps == 10

    def test_aggregations(self):
        dataset = self._dataset(n=6)
        assert resample(dataset, 3, "first").values[0, 0] == 0.0
        assert resample(dataset, 3, "last").values[0, 0] == 2.0
        assert resample(dataset, 3, "max").values[0, 0] == 2.0
        assert resample(dataset, 3, "min").values[0, 0] == 0.0
        assert resample(dataset, 3, "median").values[0, 0] == 1.0

    def test_factor_one_is_identity(self):
        dataset = self._dataset()
        assert resample(dataset, 1) is dataset

    def test_name_records_the_factor(self):
        assert resample(self._dataset(), 4).name == "toy_x4"

    def test_validation(self):
        with pytest.raises(DataError):
            resample(self._dataset(), 0)
        with pytest.raises(DataError):
            resample(self._dataset(), 3, "mode")
        with pytest.raises(DataError):
            resample(self._dataset(n=4), 4)


class TestFillMissing:
    def test_interpolation_bridges_gaps(self):
        values = np.array([0.0, np.nan, np.nan, 3.0])
        filled = fill_missing(values)
        assert np.allclose(filled.values[:, 0], [0.0, 1.0, 2.0, 3.0])

    def test_edges_padded_with_nearest(self):
        values = np.array([np.nan, 2.0, 3.0, np.nan])
        filled = fill_missing(values)
        assert filled.values[0, 0] == 2.0
        assert filled.values[3, 0] == 3.0

    def test_ffill(self):
        values = np.array([np.nan, 5.0, np.nan, np.nan, 7.0])
        filled = fill_missing(values, method="ffill")
        assert np.allclose(filled.values[:, 0], [5.0, 5.0, 5.0, 5.0, 7.0])

    def test_per_dimension_independence(self):
        values = np.array([[1.0, np.nan], [np.nan, 20.0], [3.0, 30.0]])
        filled = fill_missing(values, dim_names=("a", "b"))
        assert filled.values[1, 0] == pytest.approx(2.0)
        assert filled.values[0, 1] == 20.0

    def test_zero_shot_method(self):
        t = np.arange(120.0)
        clean = np.sin(2 * np.pi * t / 12.0)
        corrupted = clean.copy()
        corrupted[60:66] = np.nan
        filled = fill_missing(corrupted, method="zero-shot")
        gap_error = np.abs(filled.values[60:66, 0] - clean[60:66]).max()
        assert gap_error < 0.5

    def test_result_is_a_valid_dataset(self):
        filled = fill_missing(np.array([1.0, np.nan, 3.0]), name="x")
        assert isinstance(filled, Dataset)
        assert np.isfinite(filled.values).all()

    def test_validation(self):
        with pytest.raises(DataError):
            fill_missing(np.array([np.nan, np.nan]))  # fully missing
        with pytest.raises(DataError):
            fill_missing(np.array([1.0, np.inf]))
        with pytest.raises(DataError):
            fill_missing(np.array([1.0, np.nan, 3.0]), method="magic")


class TestDifferenceDataset:
    def test_first_difference(self):
        dataset = Dataset("d", np.array([[1.0], [3.0], [6.0]]), ("x",))
        differenced = difference_dataset(dataset)
        assert differenced.values[:, 0].tolist() == [2.0, 3.0]

    def test_second_order(self):
        dataset = gas_rate(n=50)
        differenced = difference_dataset(dataset, order=2)
        assert differenced.num_timestamps == 48

    def test_validation(self):
        dataset = gas_rate(n=50)
        with pytest.raises(DataError):
            difference_dataset(dataset, order=0)
        tiny = Dataset("t", np.array([[1.0], [2.0], [3.0]]), ("x",))
        with pytest.raises(DataError):
            difference_dataset(tiny, order=2)

"""Tests for the evaluation harness: protocol, tables, ASCII plots."""

import numpy as np
import pytest

from repro.baselines.arima import kpss_statistic
from repro.data import gas_rate, synthetic_multivariate
from repro.evaluation import (
    EvalResult,
    ascii_plot,
    available_methods,
    evaluate_method,
    format_table,
    overlay_series,
    run_method,
    TableResult,
)
from repro.exceptions import ConfigError, DataError, FittingError


class TestKpss:
    def test_stationary_series_scores_low(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        assert kpss_statistic(x) < 0.463

    def test_random_walk_scores_high(self):
        rng = np.random.default_rng(1)
        x = np.cumsum(rng.normal(size=500))
        assert kpss_statistic(x) > 0.463

    def test_strong_ar_is_still_stationary(self):
        """The case the variance heuristic gets wrong (over-differencing)."""
        rng = np.random.default_rng(2)
        x = np.zeros(2000)
        for t in range(1, 2000):
            x[t] = 0.8 * x[t - 1] + rng.normal()
        assert kpss_statistic(x) < 0.463

    def test_too_short_rejected(self):
        with pytest.raises(FittingError):
            kpss_statistic(np.ones(5))


class TestMethodRegistry:
    def test_paper_competitors_registered(self):
        methods = available_methods()
        for name in ("multicast-di", "multicast-vi", "multicast-vc",
                     "llmtime", "arima", "lstm"):
            assert name in methods

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigError):
            run_method("prophet", np.zeros((20, 1)), 5)

    def test_classical_methods_return_arrays(self):
        history = synthetic_multivariate(n=80, num_dims=2, seed=0).values
        forecast = run_method("naive", history, 4)
        assert isinstance(forecast, np.ndarray)
        assert forecast.shape == (4, 2)

    def test_llm_methods_return_forecast_output(self):
        history = synthetic_multivariate(n=80, num_dims=2, seed=0).values
        output = run_method("multicast-vi", history, 4, num_samples=2)
        assert output.values.shape == (4, 2)
        assert output.generated_tokens > 0


class TestEvaluateMethod:
    def test_result_contract(self):
        dataset = synthetic_multivariate(n=100, num_dims=2, seed=1)
        result = evaluate_method("multicast-di", dataset, seed=0, num_samples=2)
        assert isinstance(result, EvalResult)
        assert set(result.rmse_per_dim) == {"x0", "x1"}
        assert all(v >= 0 for v in result.rmse_per_dim.values())
        assert result.forecast.shape == result.actual.shape
        assert result.simulated_seconds > 0
        assert result.reported_seconds == result.simulated_seconds

    def test_classical_method_reports_wall_time(self):
        dataset = synthetic_multivariate(n=100, num_dims=1, seed=2)
        result = evaluate_method("drift", dataset)
        assert result.simulated_seconds == 0.0
        assert result.reported_seconds == result.wall_seconds

    def test_sax_options_flow_through(self):
        dataset = gas_rate(n=120)
        result = evaluate_method(
            "multicast-di",
            dataset,
            num_samples=2,
            sax={"segment_length": 6, "alphabet_size": 5},
        )
        assert result.metadata["sax"] is True

    def test_holdout_fraction(self):
        dataset = synthetic_multivariate(n=100, num_dims=1, seed=3)
        result = evaluate_method("naive", dataset, test_fraction=0.1)
        assert result.actual.shape[0] == 10


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("|") == lines[2].index("|")

    def test_format_table_validation(self):
        with pytest.raises(DataError):
            format_table([], [])
        with pytest.raises(DataError):
            format_table(["a"], [[1, 2]])

    def test_table_result_cell_lookup(self):
        table = TableResult("T", "demo", ["Model", "x"])
        table.add_row("m1", 1.5)
        assert table.cell("m1", "x") == 1.5
        with pytest.raises(DataError):
            table.cell("m2", "x")
        with pytest.raises(DataError):
            table.cell("m1", "y")

    def test_table_result_format_includes_notes(self):
        table = TableResult("T", "demo", ["Model", "x"], notes=["hello"])
        table.add_row("m1", 1.0)
        assert "hello" in table.format()
        assert "T: demo" in str(table)


class TestAsciiPlot:
    def test_renders_legend_and_bounds(self):
        text = ascii_plot({"actual": np.sin(np.arange(30) / 3.0)}, title="demo")
        assert "demo" in text
        assert "* actual" in text
        assert "0.995" in text  # y max label (max of the plotted sine)

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_plot(
            {"a": np.arange(10.0), "b": np.arange(10.0)[::-1]}
        )
        assert "* a" in text and "o b" in text

    def test_constant_series_does_not_crash(self):
        text = ascii_plot({"flat": np.ones(10)})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(DataError):
            ascii_plot({})
        with pytest.raises(DataError):
            ascii_plot({"x": np.ones(1)})
        with pytest.raises(DataError):
            ascii_plot({"x": np.array([1.0, np.nan])})
        with pytest.raises(DataError):
            ascii_plot({"x": np.ones(5)}, width=4)


class TestOverlayCsv:
    def test_writes_aligned_columns(self, tmp_path):
        path = tmp_path / "fig.csv"
        overlay_series(
            path,
            actual=np.array([1.0, 2.0]),
            forecasts={"m": np.array([1.1, 2.1])},
            history=np.array([0.0, 0.5]),
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t,history,actual,m"
        assert len(lines) == 5  # header + 2 history + 2 forecast rows
        assert lines[1].startswith("0,0,")
        assert lines[3].split(",")[2] == "1"

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(DataError):
            overlay_series(
                tmp_path / "bad.csv",
                actual=np.array([1.0, 2.0]),
                forecasts={"m": np.array([1.0])},
            )

"""Tests for sampling, constraints, cost model, and the model registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding import digit_vocabulary
from repro.exceptions import ConfigError, GenerationError
from repro.llm import (
    ModelSpec,
    PeriodicPatternConstraint,
    PPMLanguageModel,
    SetConstraint,
    TokenCostModel,
    UniformLM,
    available_models,
    get_model,
    register_model,
    sample_from_distribution,
)


class TestSampling:
    def test_greedy_picks_argmax(self):
        probs = np.array([0.1, 0.7, 0.2])
        token, p = sample_from_distribution(probs, np.random.default_rng(0), temperature=0.0)
        assert token == 1
        assert p == pytest.approx(0.7)

    def test_respects_allowed_ids(self):
        probs = np.array([0.9, 0.05, 0.05])
        rng = np.random.default_rng(1)
        for _ in range(20):
            token, _ = sample_from_distribution(probs, rng, allowed_ids=[1, 2])
            assert token in (1, 2)

    def test_masked_out_mass_falls_back_to_uniform(self):
        probs = np.array([1.0, 0.0, 0.0])
        rng = np.random.default_rng(2)
        tokens = {
            sample_from_distribution(probs, rng, allowed_ids=[1, 2])[0]
            for _ in range(50)
        }
        assert tokens == {1, 2}

    def test_temperature_zero_after_mask(self):
        probs = np.array([0.5, 0.3, 0.2])
        token, _ = sample_from_distribution(
            probs, np.random.default_rng(0), temperature=0.0, allowed_ids=[1, 2]
        )
        assert token == 1

    def test_low_temperature_sharpens(self):
        probs = np.array([0.6, 0.4])
        rng = np.random.default_rng(3)
        cold = [
            sample_from_distribution(probs, rng, temperature=0.1)[0]
            for _ in range(200)
        ]
        assert np.mean(cold) < 0.05  # almost always token 0

    def test_high_temperature_flattens(self):
        probs = np.array([0.9, 0.1])
        rng = np.random.default_rng(4)
        hot = [
            sample_from_distribution(probs, rng, temperature=10.0)[0]
            for _ in range(400)
        ]
        assert 0.3 < np.mean(hot) < 0.7

    def test_top_k_filters(self):
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        rng = np.random.default_rng(5)
        tokens = {
            sample_from_distribution(probs, rng, top_k=2)[0] for _ in range(100)
        }
        assert tokens <= {0, 1}

    def test_top_p_filters(self):
        probs = np.array([0.55, 0.4, 0.04, 0.01])
        rng = np.random.default_rng(6)
        tokens = {
            sample_from_distribution(probs, rng, top_p=0.9)[0] for _ in range(200)
        }
        assert tokens <= {0, 1}

    def test_invalid_args_raise(self):
        probs = np.array([1.0])
        rng = np.random.default_rng(0)
        with pytest.raises(GenerationError):
            sample_from_distribution(probs, rng, temperature=-1.0)
        with pytest.raises(GenerationError):
            sample_from_distribution(probs, rng, top_k=0)
        with pytest.raises(GenerationError):
            sample_from_distribution(probs, rng, top_p=0.0)
        with pytest.raises(GenerationError):
            sample_from_distribution(np.zeros((2, 2)), rng)
        with pytest.raises(GenerationError):
            sample_from_distribution(np.array([0.5, 0.5]), rng, allowed_ids=[5])
        with pytest.raises(GenerationError):
            sample_from_distribution(np.array([0.5, 0.5]), rng, allowed_ids=[])

    def test_all_zero_distribution_raises(self):
        with pytest.raises(GenerationError):
            sample_from_distribution(np.zeros(3), np.random.default_rng(0))


class TestConstraints:
    def test_set_constraint_is_position_independent(self):
        constraint = SetConstraint([1, 2, 3])
        assert constraint.allowed_at(0) == constraint.allowed_at(99)

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigError):
            SetConstraint([])

    def test_periodic_pattern_cycles(self):
        digits = frozenset(range(10))
        comma = frozenset([10])
        constraint = PeriodicPatternConstraint([digits, digits, comma])
        assert constraint.allowed_at(0) == digits
        assert constraint.allowed_at(2) == comma
        assert constraint.allowed_at(3) == digits
        assert constraint.allowed_at(5) == comma

    def test_phase_shift(self):
        a, b = frozenset([0]), frozenset([1])
        constraint = PeriodicPatternConstraint([a, b], phase=1)
        assert constraint.allowed_at(0) == b
        assert constraint.allowed_at(1) == a

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigError):
            PeriodicPatternConstraint([])

    def test_empty_slot_rejected(self):
        with pytest.raises(ConfigError):
            PeriodicPatternConstraint([frozenset([1]), frozenset()])

    def test_negative_position_rejected(self):
        constraint = PeriodicPatternConstraint([frozenset([1])])
        with pytest.raises(ConfigError):
            constraint.allowed_at(-1)

    def test_generation_follows_structured_grammar(self):
        """Even a uniform model emits perfectly formed groups under the grammar."""
        vocab = digit_vocabulary()
        digits = vocab.ids_of("0123456789")
        comma = vocab.ids_of(",")
        constraint = PeriodicPatternConstraint(
            [digits, digits, digits, comma]
        )
        model = UniformLM(vocab_size=len(vocab))
        result = model.generate([], 12, np.random.default_rng(7), constraint=constraint)
        text = "".join(vocab.decode(result.tokens))
        groups = text.split(",")
        assert [len(g) for g in groups[:3]] == [3, 3, 3]


class TestCostModel:
    def test_seconds_scale_linearly_with_generated_tokens(self):
        cost = TokenCostModel(seconds_per_generated_token=0.5)
        assert cost.seconds(0, 100) == pytest.approx(50.0)
        assert cost.seconds(0, 200) == pytest.approx(100.0)

    def test_prompt_tokens_are_cheap_but_counted(self):
        cost = TokenCostModel(
            seconds_per_generated_token=0.5, seconds_per_prompt_token=0.002
        )
        assert cost.seconds(1000, 0) == pytest.approx(2.0)

    def test_dollars_count_all_tokens(self):
        cost = TokenCostModel(usd_per_1k_tokens=2.0)
        assert cost.dollars(500, 500) == pytest.approx(2.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigError):
            TokenCostModel(seconds_per_generated_token=-1.0)


class TestRegistry:
    def test_paper_presets_available(self):
        names = available_models()
        assert "llama2-7b-sim" in names
        assert "phi2-2.7b-sim" in names

    def test_get_model_instantiates(self):
        model = get_model("llama2-7b-sim", vocab_size=11)
        assert model.name == "llama2-7b-sim"
        assert model.vocab_size == 11

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(ConfigError, match="llama2-7b-sim"):
            get_model("gpt-17", vocab_size=11)

    def test_duplicate_registration_rejected(self):
        spec = ModelSpec(name="llama2-7b-sim", factory=UniformLM)
        with pytest.raises(ConfigError):
            register_model(spec)

    def test_overwrite_allowed_when_explicit(self):
        spec = ModelSpec(name="test-overwrite", factory=UniformLM)
        register_model(spec)
        register_model(spec, overwrite=True)

    def test_generation_is_reproducible_with_seeded_rng(self):
        model = get_model("llama2-7b-sim", vocab_size=11)
        context = list(range(10)) * 4
        a = model.generate(context, 20, np.random.default_rng(42)).tokens
        b = model.generate(context, 20, np.random.default_rng(42)).tokens
        assert a == b

    def test_simulated_model_is_stateless_across_calls(self):
        model = get_model("llama2-7b-sim", vocab_size=11)
        context = [1, 2, 3] * 10
        first = model.generate(context, 10, np.random.default_rng(0)).tokens
        model.generate([5, 6] * 20, 10, np.random.default_rng(9))
        again = model.generate(context, 10, np.random.default_rng(0)).tokens
        assert first == again

    def test_nll_scoring_through_wrapper(self):
        model = get_model("llama2-7b-sim", vocab_size=5)
        nll = model.sequence_nll([0, 1, 2], context=[0, 1, 2] * 10)
        assert nll.shape == (3,)
        assert np.isfinite(nll).all()


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0),
        min_size=2,
        max_size=20,
    ).filter(lambda xs: sum(xs) > 0),
    st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=60)
def test_sampling_always_returns_valid_token_property(weights, temperature):
    probs = np.asarray(weights)
    probs = probs / probs.sum()
    token, p = sample_from_distribution(
        probs, np.random.default_rng(0), temperature=temperature
    )
    assert 0 <= token < probs.size
    assert 0.0 <= p <= 1.0 + 1e-9


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=40))
def test_periodic_constraint_period_property(period, position):
    pattern = [frozenset([i]) for i in range(period)]
    constraint = PeriodicPatternConstraint(pattern)
    assert constraint.allowed_at(position) == frozenset([position % period])

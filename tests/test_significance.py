"""Tests for the Diebold-Mariano test and the detection-scoring harness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import diebold_mariano
from repro.exceptions import DataError
from repro.tasks import (
    DetectionScore,
    inject_level_shift,
    inject_point_anomalies,
    inject_regime_change,
    score_detections,
)


class TestDieboldMariano:
    def test_identical_forecasts_are_not_significant(self):
        rng = np.random.default_rng(0)
        errors = rng.normal(size=100)
        result = diebold_mariano(errors, errors)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_clearly_better_method_is_detected(self):
        rng = np.random.default_rng(1)
        good = 0.5 * rng.normal(size=300)
        bad = 2.0 * rng.normal(size=300)
        result = diebold_mariano(good, bad)
        assert result.favours_first
        assert result.significant(0.01)

    def test_direction_flips_with_argument_order(self):
        rng = np.random.default_rng(2)
        good = 0.5 * rng.normal(size=200)
        bad = 2.0 * rng.normal(size=200)
        forward = diebold_mariano(good, bad)
        backward = diebold_mariano(bad, good)
        assert forward.statistic == pytest.approx(-backward.statistic)
        assert forward.favours_first and not backward.favours_first

    def test_equal_variance_noise_is_usually_insignificant(self):
        """Size control: under the null, rejections at 5% stay near 5%."""
        rejections = 0
        trials = 60
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            e1 = rng.normal(size=150)
            e2 = rng.normal(size=150)
            if diebold_mariano(e1, e2).significant(0.05):
                rejections += 1
        assert rejections <= int(0.15 * trials)  # generous band around 5%

    def test_absolute_loss_variant(self):
        rng = np.random.default_rng(3)
        good = 0.5 * rng.normal(size=300)
        bad = 2.0 * rng.normal(size=300)
        result = diebold_mariano(good, bad, loss="absolute")
        assert result.favours_first and result.significant(0.01)

    def test_horizon_bandwidth_changes_the_statistic(self):
        rng = np.random.default_rng(4)
        # Autocorrelated loss differential (overlapping h-step errors).
        base = np.cumsum(rng.normal(size=200)) * 0.05
        e1 = base + 0.4 * rng.normal(size=200)
        e2 = 1.3 * (base + 0.4 * rng.normal(size=200))
        h1 = diebold_mariano(e1, e2, horizon=1)
        h5 = diebold_mariano(e1, e2, horizon=5)
        assert h1.statistic != pytest.approx(h5.statistic)

    def test_validation(self):
        with pytest.raises(DataError):
            diebold_mariano(np.ones(3), np.ones(3))
        with pytest.raises(DataError):
            diebold_mariano(np.ones(10), np.ones(9))
        with pytest.raises(DataError):
            diebold_mariano(np.ones(10), np.ones(10), horizon=0)
        with pytest.raises(DataError):
            diebold_mariano(np.ones(10), np.ones(10), loss="huber")
        result = diebold_mariano(np.arange(10.0), np.arange(10.0) * 1.1)
        with pytest.raises(DataError):
            result.significant(alpha=0.0)


class TestInjectors:
    def test_point_anomalies_positions_and_magnitude(self):
        series = np.sin(np.arange(200.0) / 5.0)
        corrupted, positions = inject_point_anomalies(series, count=3, seed=0)
        assert positions.size == 3
        for p in positions:
            assert abs(corrupted[p] - series[p]) > 2.0 * series.std()
        untouched = np.delete(corrupted, positions)
        assert np.allclose(untouched, np.delete(series, positions))

    def test_point_anomalies_respect_margins(self):
        series = np.zeros(100) + np.sin(np.arange(100.0))
        _, positions = inject_point_anomalies(series, count=3, seed=1, margin=10)
        assert positions.min() >= 10 and positions.max() < 90
        assert np.diff(positions).min() > 10

    def test_level_shift(self):
        series = np.sin(np.arange(100.0) / 4.0)
        shifted = inject_level_shift(series, position=60, magnitude=3.0)
        assert np.allclose(shifted[:60], series[:60])
        assert (shifted[60:] - series[60:]).min() > 0

    def test_regime_change(self):
        series, break_at = inject_regime_change(100, 80, seed=2)
        assert series.size == 180
        assert break_at == 100
        assert series[110:].mean() > series[:100].mean() + 1.0

    def test_validation(self):
        with pytest.raises(DataError):
            inject_point_anomalies(np.zeros(20), count=5)
        with pytest.raises(DataError):
            inject_level_shift(np.zeros(10), position=0)
        with pytest.raises(DataError):
            inject_regime_change(4, 100)


class TestScoreDetections:
    def test_perfect_detection(self):
        score = score_detections([10, 50, 90], [10, 50, 90])
        assert score.precision == 1.0 and score.recall == 1.0 and score.f1 == 1.0

    def test_tolerance_window(self):
        score = score_detections([12], [10], tolerance=3)
        assert score.true_positives == 1
        score = score_detections([15], [10], tolerance=3)
        assert score.true_positives == 0

    def test_one_detection_cannot_match_two_events(self):
        score = score_detections([10], [9, 11], tolerance=3)
        assert score.true_positives == 1
        assert score.false_negatives == 1

    def test_nearest_match_wins(self):
        score = score_detections([10, 20], [11, 19], tolerance=3)
        assert score.true_positives == 2

    def test_false_positives_counted(self):
        score = score_detections([10, 40, 70], [10], tolerance=2)
        assert score.false_positives == 2
        assert score.precision == pytest.approx(1 / 3)

    def test_empty_edge_cases(self):
        assert score_detections([], []).precision == 1.0
        assert score_detections([], [5]).recall == 0.0
        assert score_detections([5], []).recall == 1.0
        assert score_detections([5], []).precision == 0.0
        assert score_detections([], [5]).f1 == 0.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(DataError):
            score_detections([1], [1], tolerance=-1)


class TestEndToEndDetection:
    def test_anomaly_detector_scores_well_on_planted_spikes(self):
        from repro.tasks import detect_anomalies

        series = np.sin(2 * np.pi * np.arange(240) / 20.0)
        corrupted, truth = inject_point_anomalies(
            series, count=3, magnitude=5.0, seed=3, margin=20
        )
        hits = detect_anomalies(corrupted, threshold_quantile=0.985)
        score = score_detections(hits, truth, tolerance=2)
        assert score.recall >= 2 / 3
        assert score.f1 > 0.5

    def test_changepoint_detector_scores_regime_break(self):
        from repro.tasks import detect_changepoints

        series, break_at = inject_regime_change(110, 90, seed=4)
        hits = detect_changepoints(series, window=20)
        score = score_detections(hits, [break_at], tolerance=5)
        assert score.recall == 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=200), max_size=10, unique=True),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=40)
def test_perfect_detection_property(events, tolerance):
    score = score_detections(events, events, tolerance=tolerance)
    assert score.recall == 1.0
    assert score.false_positives == 0

"""Unit and property tests for repro.encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.encoding import (
    SEPARATOR,
    DigitCodec,
    Vocabulary,
    digit_vocabulary,
    parse_token_stream,
    render_token_stream,
    sax_vocabulary,
)
from repro.exceptions import EncodingError


class TestVocabulary:
    def test_digit_vocabulary_has_eleven_tokens(self):
        vocab = digit_vocabulary()
        assert len(vocab) == 11
        assert vocab.tokens[:10] == tuple(str(d) for d in range(10))
        assert vocab.tokens[10] == ","

    def test_encode_decode_round_trip(self):
        vocab = digit_vocabulary()
        tokens = list("31,41")
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_unknown_token_raises(self):
        with pytest.raises(EncodingError):
            digit_vocabulary().id_of("x")

    def test_out_of_range_id_raises(self):
        with pytest.raises(EncodingError):
            digit_vocabulary().token_of(11)

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(EncodingError):
            Vocabulary(["a", "a"])

    def test_multi_char_tokens_rejected(self):
        with pytest.raises(EncodingError):
            Vocabulary(["ab"])

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(EncodingError):
            Vocabulary([])

    def test_ids_of_returns_frozenset(self):
        vocab = digit_vocabulary()
        ids = vocab.ids_of("0123456789")
        assert isinstance(ids, frozenset)
        assert len(ids) == 10

    def test_equality_and_hash(self):
        assert digit_vocabulary() == digit_vocabulary()
        assert hash(digit_vocabulary()) == hash(digit_vocabulary())

    def test_sax_vocabulary_appends_separator(self):
        vocab = sax_vocabulary("abcde")
        assert len(vocab) == 6
        assert "," in vocab

    def test_sax_vocabulary_rejects_comma_symbol(self):
        with pytest.raises(EncodingError):
            sax_vocabulary(["a", ","])


class TestDigitCodec:
    def test_zero_pads(self):
        assert DigitCodec(3).digits_of(7) == ["0", "0", "7"]

    def test_round_trip(self):
        codec = DigitCodec(4)
        for value in (0, 1, 42, 9999):
            assert codec.value_of(codec.digits_of(value)) == value

    def test_overflow_raises(self):
        with pytest.raises(EncodingError):
            DigitCodec(2).digits_of(100)

    def test_negative_raises(self):
        with pytest.raises(EncodingError):
            DigitCodec(2).digits_of(-1)

    def test_partial_parse_left_aligns(self):
        # A truncated group "42" under width 3 reads as 420.
        assert DigitCodec(3).value_of_partial(["4", "2"]) == 420

    def test_partial_parse_empty_raises(self):
        with pytest.raises(EncodingError):
            DigitCodec(3).value_of_partial([])

    def test_wrong_width_full_parse_raises(self):
        with pytest.raises(EncodingError):
            DigitCodec(3).value_of(["1", "2"])

    def test_zero_width_rejected(self):
        with pytest.raises(EncodingError):
            DigitCodec(0)


class TestRenderAndParse:
    def test_render_inserts_separators(self):
        tokens = render_token_stream([17, 23], DigitCodec(2))
        assert tokens == ["1", "7", SEPARATOR, "2", "3"]

    def test_round_trip(self):
        codec = DigitCodec(3)
        values = [0, 5, 123, 999, 42]
        parsed = parse_token_stream(render_token_stream(values, codec), codec)
        assert parsed.tolist() == values

    def test_strict_round_trip(self):
        codec = DigitCodec(3)
        values = [1, 2, 3]
        tokens = render_token_stream(values, codec)
        assert parse_token_stream(tokens, codec, strict=True).tolist() == values

    def test_lenient_accepts_truncated_final_group(self):
        codec = DigitCodec(3)
        tokens = ["1", "2", "3", SEPARATOR, "4", "5"]
        assert parse_token_stream(tokens, codec).tolist() == [123, 450]

    def test_strict_rejects_truncated_final_group(self):
        codec = DigitCodec(3)
        tokens = ["1", "2", "3", SEPARATOR, "4", "5"]
        with pytest.raises(EncodingError):
            parse_token_stream(tokens, codec, strict=True)

    def test_lenient_splits_missing_separator(self):
        codec = DigitCodec(2)
        tokens = ["1", "2", "3", "4"]  # no separator at all
        assert parse_token_stream(tokens, codec).tolist() == [12, 34]

    def test_lenient_skips_doubled_separators(self):
        codec = DigitCodec(2)
        tokens = ["1", "2", SEPARATOR, SEPARATOR, "3", "4"]
        assert parse_token_stream(tokens, codec).tolist() == [12, 34]

    def test_strict_rejects_doubled_separators(self):
        codec = DigitCodec(2)
        with pytest.raises(EncodingError):
            parse_token_stream(["1", "2", SEPARATOR, SEPARATOR], codec, strict=True)

    def test_unknown_token_raises(self):
        with pytest.raises(EncodingError):
            parse_token_stream(["1", "x"], DigitCodec(2))

    def test_empty_stream_parses_to_nothing(self):
        assert parse_token_stream([], DigitCodec(3)).size == 0

    def test_result_dtype_is_integer(self):
        parsed = parse_token_stream(["1", "2"], DigitCodec(2))
        assert parsed.dtype == np.int64


@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=0, max_size=60),
)
def test_stream_round_trip_property(values):
    codec = DigitCodec(3)
    tokens = render_token_stream(values, codec)
    assert parse_token_stream(tokens, codec, strict=True).tolist() == values


@given(
    st.integers(min_value=1, max_value=6),
    st.data(),
)
def test_stream_round_trip_any_width_property(width, data):
    codec = DigitCodec(width)
    values = data.draw(
        st.lists(st.integers(min_value=0, max_value=codec.max_value), max_size=30)
    )
    tokens = render_token_stream(values, codec)
    assert parse_token_stream(tokens, codec).tolist() == values


@given(st.lists(st.sampled_from("0123456789,"), max_size=80))
def test_lenient_parser_never_crashes_on_numeric_garbage(chars):
    """Whatever digit/comma soup the model emits, lenient parsing survives."""
    parsed = parse_token_stream(chars, DigitCodec(3))
    assert (parsed >= 0).all() and (parsed <= 999).all()

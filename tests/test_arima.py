"""Tests for the from-scratch ARIMA implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ARIMA, auto_arima
from repro.baselines.arima import difference, undifference
from repro.exceptions import FittingError
from repro.metrics import rmse


def _simulate_arma(n, phi=(), theta=(), c=0.0, sigma=1.0, seed=0, burn=200):
    rng = np.random.default_rng(seed)
    e = rng.normal(0.0, sigma, size=n + burn)
    x = np.zeros(n + burn)
    p, q = len(phi), len(theta)
    for t in range(n + burn):
        value = c + e[t]
        for i in range(1, p + 1):
            if t - i >= 0:
                value += phi[i - 1] * x[t - i]
        for j in range(1, q + 1):
            if t - j >= 0:
                value += theta[j - 1] * e[t - j]
        x[t] = value
    return x[burn:]


class TestDifferencing:
    def test_first_difference(self):
        assert difference([1.0, 3.0, 6.0], 1).tolist() == [2.0, 3.0]

    def test_zero_order_is_identity(self):
        x = np.array([1.0, 2.0])
        assert difference(x, 0).tolist() == x.tolist()

    def test_round_trip_order_1(self):
        x = np.array([5.0, 7.0, 4.0, 9.0, 12.0])
        d1 = difference(x, 1)
        forecast = np.array([1.0, -2.0, 0.5])
        restored = undifference(forecast, x, 1)
        # Equivalent to continuing the cumulative sum from x[-1].
        assert restored.tolist() == [13.0, 11.0, 11.5]

    def test_round_trip_order_2(self):
        rng = np.random.default_rng(0)
        x = np.cumsum(np.cumsum(rng.normal(size=50)))
        future = rng.normal(size=5)
        # Differencing the extended series must recover the forecast.
        restored = undifference(future, x, 2)
        extended = np.concatenate([x, restored])
        assert np.allclose(difference(extended, 2)[-5:], future)

    def test_negative_order_rejected(self):
        with pytest.raises(FittingError):
            difference([1.0, 2.0], -1)
        with pytest.raises(FittingError):
            undifference(np.ones(2), np.ones(5), -1)

    def test_too_short_to_difference(self):
        with pytest.raises(FittingError):
            difference([1.0], 1)


class TestArEstimation:
    def test_recovers_ar1_coefficient(self):
        x = _simulate_arma(3000, phi=(0.7,), seed=1)
        model = ARIMA(order=(1, 0, 0)).fit(x)
        assert model.params["phi"][0] == pytest.approx(0.7, abs=0.05)

    def test_recovers_ar2_coefficients(self):
        x = _simulate_arma(5000, phi=(1.2, -0.5), seed=2)
        model = ARIMA(order=(2, 0, 0)).fit(x)
        assert model.params["phi"] == pytest.approx([1.2, -0.5], abs=0.06)

    def test_recovers_intercept(self):
        x = _simulate_arma(4000, phi=(0.5,), c=2.0, seed=3)
        model = ARIMA(order=(1, 0, 0)).fit(x)
        # Implied mean = c / (1 - phi) should be near 4.
        implied_mean = model.params["c"] / (1 - model.params["phi"][0])
        assert implied_mean == pytest.approx(4.0, abs=0.4)

    def test_sigma2_estimated(self):
        x = _simulate_arma(5000, phi=(0.6,), sigma=2.0, seed=4)
        model = ARIMA(order=(1, 0, 0)).fit(x)
        assert model.params["sigma2"] == pytest.approx(4.0, rel=0.15)


class TestArmaEstimation:
    def test_recovers_ma1_coefficient(self):
        x = _simulate_arma(5000, theta=(0.6,), seed=5)
        model = ARIMA(order=(0, 0, 1)).fit(x)
        assert model.params["theta"][0] == pytest.approx(0.6, abs=0.08)

    def test_recovers_arma11(self):
        x = _simulate_arma(6000, phi=(0.5,), theta=(0.4,), seed=6)
        model = ARIMA(order=(1, 0, 1)).fit(x)
        assert model.params["phi"][0] == pytest.approx(0.5, abs=0.1)
        assert model.params["theta"][0] == pytest.approx(0.4, abs=0.12)

    def test_css_improves_on_hannan_rissanen(self):
        y = _simulate_arma(800, phi=(0.5,), theta=(0.4,), seed=7)
        c0, phi0, theta0 = ARIMA._hannan_rissanen(y, 1, 1)
        c1, phi1, theta1 = ARIMA._refine_css(y, c0, phi0, theta0)
        from repro.baselines.arima import _css_residuals

        sse_before = float((_css_residuals(y, c0, phi0, theta0) ** 2).sum())
        sse_after = float((_css_residuals(y, c1, phi1, theta1) ** 2).sum())
        assert sse_after <= sse_before + 1e-9


class TestForecasting:
    def test_ar1_forecast_decays_to_mean(self):
        x = _simulate_arma(2000, phi=(0.8,), seed=8)
        model = ARIMA(order=(1, 0, 0)).fit(x)
        forecast = model.forecast(100)
        # Long-horizon AR(1) forecasts converge to the process mean (~0).
        assert abs(forecast[-1]) < abs(forecast[0]) + 0.5
        assert abs(forecast[-1]) < 0.5

    def test_random_walk_with_drift(self):
        rng = np.random.default_rng(9)
        x = np.cumsum(0.5 + rng.normal(0, 0.1, size=400))
        model = ARIMA(order=(0, 1, 0)).fit(x)
        forecast = model.forecast(10)
        increments = np.diff(np.concatenate([[x[-1]], forecast]))
        assert np.allclose(increments, 0.5, atol=0.05)

    def test_beats_naive_on_strong_ar_process(self):
        x = _simulate_arma(1200, phi=(0.95,), seed=10)
        train, test = x[:1100], x[1100:1120]
        model = ARIMA(order=(1, 0, 0)).fit(train)
        arima_rmse = rmse(test, model.forecast(20))
        naive_rmse = rmse(test, np.full(20, train.mean()))
        assert arima_rmse < naive_rmse

    def test_forecast_before_fit_raises(self):
        with pytest.raises(FittingError):
            ARIMA(order=(1, 0, 0)).forecast(5)

    def test_bad_horizon_rejected(self):
        model = ARIMA(order=(1, 0, 0)).fit(_simulate_arma(100, phi=(0.5,)))
        with pytest.raises(FittingError):
            model.forecast(0)


class TestValidation:
    def test_arima_000_rejected(self):
        with pytest.raises(FittingError):
            ARIMA(order=(0, 0, 0))

    def test_negative_order_rejected(self):
        with pytest.raises(FittingError):
            ARIMA(order=(-1, 0, 0))

    def test_2d_series_rejected(self):
        with pytest.raises(FittingError):
            ARIMA(order=(1, 0, 0)).fit(np.zeros((10, 2)))

    def test_nan_series_rejected(self):
        with pytest.raises(FittingError):
            ARIMA(order=(1, 0, 0)).fit(np.array([1.0, np.nan] * 30))

    def test_too_short_series_rejected(self):
        with pytest.raises(FittingError):
            ARIMA(order=(3, 0, 2)).fit(np.arange(8.0))


class TestAutoArima:
    def test_selects_differencing_for_random_walk(self):
        rng = np.random.default_rng(11)
        x = np.cumsum(rng.normal(size=400))
        model = auto_arima(x)
        assert model.order[1] >= 1

    def test_no_differencing_for_stationary_series(self):
        x = _simulate_arma(400, phi=(0.3,), seed=12)
        model = auto_arima(x)
        assert model.order[1] == 0

    def test_aic_of_selected_model_is_minimal_among_candidates(self):
        x = _simulate_arma(300, phi=(0.6,), seed=13)
        best = auto_arima(x, max_p=2, max_q=1)
        competitor = ARIMA(order=(2, 0, 1)).fit(x)
        assert best.aic <= competitor.aic + 1e-9

    def test_short_series_rejected(self):
        with pytest.raises(FittingError):
            auto_arima(np.arange(10.0))


@given(
    st.floats(min_value=-0.85, max_value=0.85),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_ar1_recovery_property(phi, seed):
    """OLS AR(1) estimation is consistent across the stationary range."""
    x = _simulate_arma(3000, phi=(phi,), seed=seed)
    model = ARIMA(order=(1, 0, 0)).fit(x)
    assert model.params["phi"][0] == pytest.approx(phi, abs=0.08)


@given(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_difference_undifference_round_trip_property(d, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=40)
    future = rng.normal(size=6)
    restored = undifference(future, x, d)
    extended = np.concatenate([x, restored])
    assert np.allclose(difference(extended, d)[-6:], future, atol=1e-9)

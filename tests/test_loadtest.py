"""Tests for the load-test harness: workloads, drivers, reports."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.loadtest import (
    LoadTestConfig,
    RequestSample,
    SLOThresholds,
    build_report,
    replay_workload,
    run_loadtest,
    synthesize_workload,
)
from repro.serving import forecast_digest


def _digest(item):
    spec = item.spec
    return forecast_digest(spec.series, spec.config, spec.horizon, spec.seed)


# -- workloads -----------------------------------------------------------------


def test_synthesize_workload_is_deterministic():
    first = synthesize_workload(40, distinct=5, seed=9)
    second = synthesize_workload(40, distinct=5, seed=9)
    assert [_digest(a) for a in first] == [_digest(b) for b in second]
    assert [a.tenant for a in first] == [b.tenant for b in second]


def test_synthesize_workload_repeats_distinct_shapes():
    items = synthesize_workload(60, distinct=4, seed=1)
    assert len(items) == 60
    assert len({_digest(item) for item in items}) == 4
    assert {item.tenant for item in items} == {"alpha", "beta", "gamma"}


def test_synthesize_workload_validates_arguments():
    with pytest.raises(ConfigError):
        synthesize_workload(0)
    with pytest.raises(ConfigError):
        synthesize_workload(10, distinct=0)


def _write_ledger(path, records):
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records)
    )


def test_replay_workload_preserves_duplicate_structure(tmp_path):
    ledger = tmp_path / "runs.jsonl"
    base = {
        "seed": 7, "horizon": 5, "model": "uniform-sim", "scheme": "vi",
        "tenant": "team-a", "admission": "admitted",
    }
    _write_ledger(
        ledger,
        [
            {**base, "name": "r0", "config_hash": "ab" * 32},
            {**base, "name": "r1", "config_hash": "cd" * 32},
            {**base, "name": "r2", "config_hash": "ab" * 32},  # dup of r0
        ],
    )
    items = replay_workload(ledger)
    assert len(items) == 3
    assert _digest(items[0]) == _digest(items[2])  # collision survives replay
    assert _digest(items[0]) != _digest(items[1])
    assert items[0].tenant == "team-a"
    assert items[0].spec.horizon == 5


def test_replay_workload_skips_gateway_rejections(tmp_path):
    ledger = tmp_path / "runs.jsonl"
    _write_ledger(
        ledger,
        [
            {"seed": 1, "horizon": 3, "config_hash": "11" * 32,
             "admission": "admitted"},
            {"seed": 2, "horizon": 3, "config_hash": "22" * 32,
             "admission": "shed"},
            {"seed": 3, "horizon": 3, "config_hash": "33" * 32,
             "admission": "quota"},
        ],
    )
    items = replay_workload(ledger)
    assert len(items) == 1


def test_replay_workload_repeat_scales_small_ledgers(tmp_path):
    ledger = tmp_path / "runs.jsonl"
    _write_ledger(
        ledger,
        [{"seed": 1, "horizon": 3, "config_hash": "aa" * 32}],
    )
    assert len(replay_workload(ledger, repeat=5)) == 5
    with pytest.raises(ConfigError):
        replay_workload(tmp_path / "missing.jsonl")


# -- report --------------------------------------------------------------------


def _sample(outcome="ok", latency=0.01, **kwargs):
    defaults = dict(
        name="s", tenant="t", outcome=outcome, latency_seconds=latency,
        deadline_hit=outcome in ("ok", "partial"),
    )
    defaults.update(kwargs)
    return RequestSample(**defaults)


def test_build_report_rates_and_percentiles():
    samples = (
        [_sample(latency=0.010)] * 6
        + [_sample("shed", latency=0.0)] * 2
        + [_sample("quota", latency=0.0)]
        + [_sample("ok", latency=0.020, coalesced=True)]
    )
    report = build_report(samples, wall_seconds=1.0)
    assert report.total == 10
    assert report.shed_rate == pytest.approx(0.2)
    assert report.quota_rate == pytest.approx(0.1)
    assert report.coalesce_rate == pytest.approx(0.1)
    assert report.deadline_hit_rate == pytest.approx(0.7)
    # Percentiles cover served requests only, so rejections don't drag
    # them toward zero.
    assert report.latency_p50 == pytest.approx(0.010)
    assert report.throughput_rps == pytest.approx(7.0)
    assert report.per_tenant["t"]["shed"] == 2


def test_report_slo_violations():
    report = build_report(
        [_sample()] * 8 + [_sample("shed", latency=0.0)] * 2, 1.0
    )
    clean = SLOThresholds()
    assert report.violations(clean) == []
    strict = SLOThresholds(
        min_deadline_hit_rate=0.95, max_shed_rate=0.1, max_p99_seconds=0.001
    )
    messages = report.violations(strict)
    assert len(messages) == 3
    assert any("shed rate" in message for message in messages)


def test_build_report_requires_samples():
    with pytest.raises(ValueError):
        build_report([], 1.0)


def test_report_round_trips_to_json():
    report = build_report([_sample()], 0.5)
    assert json.loads(json.dumps(report.to_dict()))["total"] == 1


# -- harness -------------------------------------------------------------------


def test_run_loadtest_open_loop_meets_slo_at_trivial_load():
    report = run_loadtest(
        LoadTestConfig(
            requests=60, rate=300.0, distinct=6, deadline_seconds=5.0
        )
    )
    assert report.total == 60
    assert report.violations(
        SLOThresholds(min_deadline_hit_rate=0.99, max_shed_rate=0.0)
    ) == []


def test_run_loadtest_closed_loop():
    report = run_loadtest(
        LoadTestConfig(requests=40, driver="closed", concurrency=4, distinct=4)
    )
    assert report.total == 40
    assert report.ok + report.partial + report.failed == 40
    assert report.coalesce_rate + report.cache_hit_rate > 0


def test_run_loadtest_sheds_under_burst():
    report = run_loadtest(
        LoadTestConfig(
            requests=200,
            rate=100_000.0,
            distinct=200,  # all distinct: coalescing cannot absorb the burst
            max_pending=4,
            use_result_cache=False,
        )
    )
    assert report.shed > 0
    assert report.shed_rate > 0


def test_run_loadtest_replays_its_own_ledger(tmp_path):
    ledger_path = tmp_path / "run.jsonl"
    first = run_loadtest(
        LoadTestConfig(
            requests=30, rate=300.0, distinct=3, ledger_out=str(ledger_path)
        )
    )
    assert first.total == 30
    assert ledger_path.exists()
    replayed = run_loadtest(
        LoadTestConfig(requests=20, rate=300.0, ledger_path=str(ledger_path))
    )
    assert replayed.total == 20
    assert replayed.failed == 0


def test_run_loadtest_over_sharded_engine(tmp_path):
    ledger_path = tmp_path / "sharded.jsonl"
    report = run_loadtest(
        LoadTestConfig(
            requests=30,
            rate=300.0,
            distinct=5,
            shards=2,
            ledger_out=str(ledger_path),
        )
    )
    assert report.total == 30
    assert report.failed == 0
    records = [
        json.loads(line)
        for line in ledger_path.read_text().splitlines()
        if line.strip()
    ]
    served = [r for r in records if r["admission"] == "admitted"]
    assert served and all(r["shard"] in (0, 1) for r in served)


def test_loadtest_config_validates():
    with pytest.raises(ConfigError):
        LoadTestConfig(driver="sideways")
    with pytest.raises(ConfigError):
        LoadTestConfig(requests=0)
    with pytest.raises(ConfigError):
        LoadTestConfig(shards=-1)


def test_cli_loadtest_subcommand(tmp_path, capsys):
    from repro.cli import main

    json_out = tmp_path / "report.json"
    code = main(
        [
            "loadtest", "--requests", "40", "--rate", "400",
            "--distinct", "5", "--deadline", "5.0",
            "--json-out", str(json_out),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "deadline hit-rate" in out
    assert json.loads(json_out.read_text())["total"] == 40


def test_cli_serve_subcommand(tmp_path, capsys):
    from repro.cli import main

    manifest = tmp_path / "jobs.json"
    manifest.write_text(
        json.dumps(
            {
                "jobs": [
                    {"name": "a", "dataset": "gas_rate", "horizon": 4,
                     "num_samples": 2, "model": "uniform-sim",
                     "tenant": "alpha", "execution": "batched"},
                    {"name": "b", "dataset": "gas_rate", "horizon": 4,
                     "num_samples": 2, "model": "uniform-sim",
                     "tenant": "beta", "execution": "batched"},
                ]
            }
        )
    )
    ledger_path = tmp_path / "serve.jsonl"
    code = main(
        ["serve", "--manifest", str(manifest), "--ledger", str(ledger_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "[coalesced]" in out  # identical specs across tenants coalesce
    records = [
        json.loads(line) for line in ledger_path.read_text().splitlines()
    ]
    assert {record["admission"] for record in records} == {
        "admitted", "coalesced",
    }

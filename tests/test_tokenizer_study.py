"""Tests for the BPE tokenizer-adaptation study."""

import numpy as np
import pytest

from repro.exceptions import EncodingError
from repro.experiments.tokenizer_study import (
    MERGE_BOUND,
    _forecast_univariate,
    _tokenize_paired,
    paired_digit_vocabulary,
    tokenizer_comparison_table,
)


class TestPairedVocabulary:
    def test_size(self):
        # 10 singles + MERGE_BOUND pairs + comma.
        assert len(paired_digit_vocabulary()) == 10 + MERGE_BOUND + 1

    def test_contains_only_low_pairs(self):
        vocabulary = paired_digit_vocabulary()
        vocabulary.id_of("49")
        with pytest.raises(EncodingError):
            vocabulary.id_of("50")

    def test_duplicate_rejected(self):
        from repro.experiments.tokenizer_study import _MultiTokenVocabulary

        with pytest.raises(EncodingError):
            _MultiTokenVocabulary(["a", "a"])


class TestPartialMergeTokenizer:
    def _decode(self, text):
        vocabulary = paired_digit_vocabulary()
        return vocabulary.decode(_tokenize_paired(text, vocabulary))

    def test_value_dependent_split(self):
        """The BPE pathology: split position depends on digit values."""
        assert self._decode("172") == ["17", "2"]
        assert self._decode("723") == ["7", "23"]

    def test_commas_never_merge(self):
        assert self._decode("01,23") == ["01", ",", "23"]

    def test_round_trips_as_text(self):
        for text in ("123,456,789", "000,999", "5"):
            assert "".join(self._decode(text)) == text

    def test_high_digits_fall_back_to_singles(self):
        assert self._decode("99") == ["9", "9"]

    def test_same_value_splits_identically(self):
        assert self._decode("017") == self._decode("017")


class TestStudy:
    def test_both_tokenizers_produce_usable_forecasts(self):
        series = np.sin(2 * np.pi * np.arange(120) / 12.0)
        for tokenizer in ("digit", "paired"):
            forecast = _forecast_univariate(
                series, horizon=8, tokenizer=tokenizer, num_samples=2
            )
            assert forecast.shape == (8,)
            assert np.isfinite(forecast).all()

    def test_unknown_tokenizer_rejected(self):
        with pytest.raises(EncodingError):
            _forecast_univariate(np.sin(np.arange(60.0)), 4, "wordpiece")

    def test_table_structure(self):
        table = tokenizer_comparison_table(num_samples=2)
        assert [row[0] for row in table.rows] == ["digit", "paired"]
        for row in table.rows:
            assert np.isfinite(row[1]) and np.isfinite(row[2])

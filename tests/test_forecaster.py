"""Integration tests for the MultiCast forecaster (raw + SAX paths)."""

import numpy as np
import pytest

from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.data import gas_rate, synthetic_multivariate
from repro.exceptions import ConfigError, DataError
from repro.metrics import rmse


def _history(n=120, d=2, seed=0):
    return synthetic_multivariate(n=n, num_dims=d, seed=seed).values


def _run(config, history, horizon, seed=None):
    spec = ForecastSpec.from_config(
        config, series=history, horizon=horizon, seed=seed
    )
    return MultiCastForecaster().forecast(spec)


class TestConfigValidation:
    def test_paper_defaults(self):
        config = MultiCastConfig()
        assert config.num_samples == 5
        assert config.num_digits == 3
        assert config.model == "llama2-7b-sim"
        assert config.sax is None

    def test_invalid_scheme(self):
        with pytest.raises(ConfigError):
            MultiCastConfig(scheme="xyz")

    def test_invalid_counts(self):
        with pytest.raises(ConfigError):
            MultiCastConfig(num_digits=0)
        with pytest.raises(ConfigError):
            MultiCastConfig(num_samples=0)
        with pytest.raises(ConfigError):
            MultiCastConfig(max_context_tokens=2)

    def test_invalid_aggregation(self):
        with pytest.raises(ConfigError):
            MultiCastConfig(aggregation="mode")

    def test_sax_defaults_match_table_ii(self):
        sax = SaxConfig()
        assert sax.segment_length == 6
        assert sax.alphabet_size == 5
        assert sax.alphabet_kind == "alphabetical"

    def test_sax_validation(self):
        with pytest.raises(ConfigError):
            SaxConfig(segment_length=0)
        with pytest.raises(ConfigError):
            SaxConfig(alphabet_kind="digital", alphabet_size=20)
        with pytest.raises(ConfigError):
            SaxConfig(reconstruction="nearest")


class TestRawPipeline:
    @pytest.mark.parametrize("scheme", ["di", "vi", "vc", "bi"])
    def test_output_contract(self, scheme):
        history = _history()
        config = MultiCastConfig(scheme=scheme, num_samples=3, seed=0)
        output = _run(config, history, 9)
        assert output.values.shape == (9, 2)
        assert output.samples.shape == (3, 9, 2)
        assert np.isfinite(output.values).all()
        assert output.prompt_tokens > 0
        assert output.generated_tokens > 0
        assert output.metadata["method"] == f"multicast-{scheme}"
        assert output.metadata["sax"] is False

    def test_token_accounting_matches_scheme_arithmetic(self):
        history = _history(n=60, d=3)
        horizon = 5
        for scheme, per_step in (("di", 10), ("vi", 10), ("vc", 12)):
            config = MultiCastConfig(scheme=scheme, num_samples=2, num_digits=3)
            output = _run(config, history, horizon)
            assert output.generated_tokens == 2 * horizon * per_step, scheme

    def test_forecast_within_scaler_span(self):
        history = 100.0 + 10.0 * _history()
        output = _run(MultiCastConfig(num_samples=2, seed=1), history, 8)
        # Codes are bounded, so forecasts cannot leave the headroom span.
        for k in range(2):
            lo, hi = history[:, k].min(), history[:, k].max()
            span = hi - lo
            assert output.values[:, k].min() >= lo - 0.2 * span - 1e-9
            assert output.values[:, k].max() <= hi + 0.2 * span + 1e-9

    def test_reproducible_with_seed(self):
        history = _history()
        config = MultiCastConfig(num_samples=2, seed=11)
        a = _run(config, history, 6)
        b = _run(config, history, 6)
        assert np.allclose(a.values, b.values)

    def test_seed_override_changes_samples(self):
        history = _history(seed=3)
        config = MultiCastConfig(num_samples=2, seed=0, model="phi2-2.7b-sim")
        a = _run(config, history, 6, seed=1)
        b = _run(config, history, 6, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_beats_mean_predictor_on_periodic_data(self):
        t = np.arange(160.0)
        series = np.stack(
            [np.sin(2 * np.pi * t / 16), np.cos(2 * np.pi * t / 16)], axis=1
        )
        train, test = series[:144], series[144:]
        output = _run(
            MultiCastConfig(scheme="vi", num_samples=5, seed=0), train, 16
        )
        for k in range(2):
            assert rmse(test[:, k], output.values[:, k]) < rmse(
                test[:, k], np.full(16, train[:, k].mean())
            )

    def test_univariate_history_promoted(self):
        output = _run(
            MultiCastConfig(num_samples=2), np.sin(np.arange(60.0) / 4), 5
        )
        assert output.values.shape == (5, 1)

    def test_input_validation(self):
        config = MultiCastConfig(num_samples=1)
        with pytest.raises(DataError):
            _run(config, np.zeros((3, 2)), 5)  # too short
        with pytest.raises(DataError):
            _run(config, np.zeros((10, 2)), 0)  # bad horizon
        with pytest.raises(DataError):
            _run(config, np.full((10, 2), np.nan), 3)
        with pytest.raises(DataError):
            _run(config, np.zeros((2, 2, 2)), 3)

    def test_context_budget_respected(self):
        history = _history(n=2000)
        config = MultiCastConfig(num_samples=1, max_context_tokens=300)
        output = _run(config, history, 4)
        assert output.prompt_tokens <= 300 + 1  # + trailing separator

    def test_unstructured_constraint_still_produces_valid_output(self):
        history = _history()
        config = MultiCastConfig(
            num_samples=2, structured_constraint=False, seed=0
        )
        output = _run(config, history, 7)
        assert output.values.shape == (7, 2)
        assert np.isfinite(output.values).all()

    def test_uniform_model_still_yields_contractual_output(self):
        """Garbage model, valid plumbing: the pipeline never crashes."""
        history = _history()
        config = MultiCastConfig(num_samples=2, model="uniform-sim", seed=0)
        output = _run(config, history, 6)
        assert output.values.shape == (6, 2)
        assert np.isfinite(output.values).all()


class TestSaxPipeline:
    def test_output_contract(self):
        history = _history()
        config = MultiCastConfig(num_samples=3, sax=SaxConfig(), seed=0)
        output = _run(config, history, 10)
        assert output.values.shape == (10, 2)
        assert output.metadata["sax"] is True
        assert output.metadata["segment_length"] == 6

    def test_sax_generates_order_of_magnitude_fewer_tokens(self):
        """The heart of Tables VIII-IX: one symbol per segment."""
        history = _history()
        raw = _run(MultiCastConfig(num_samples=2), history, 30)
        sax = _run(
            MultiCastConfig(num_samples=2, sax=SaxConfig(segment_length=6)),
            history,
            30,
        )
        assert sax.generated_tokens * 10 < raw.generated_tokens
        assert sax.simulated_seconds * 10 < raw.simulated_seconds

    def test_longer_segments_generate_fewer_tokens(self):
        history = _history()
        tokens = {}
        for w in (3, 6, 9):
            config = MultiCastConfig(
                num_samples=1, sax=SaxConfig(segment_length=w), seed=0
            )
            tokens[w] = _run(config, history, 18).generated_tokens
        assert tokens[9] < tokens[6] < tokens[3]

    def test_digital_alphabet(self):
        history = _history()
        config = MultiCastConfig(
            num_samples=2,
            sax=SaxConfig(alphabet_kind="digital", alphabet_size=5),
            seed=0,
        )
        output = _run(config, history, 8)
        assert output.values.shape == (8, 2)

    def test_sax_forecast_values_come_from_symbol_levels(self):
        history = _history()
        config = MultiCastConfig(
            num_samples=1, sax=SaxConfig(alphabet_size=5), seed=0
        )
        output = _run(config, history, 6)
        # Each sample value must be one of the 5 reconstruction levels per dim.
        for k in range(2):
            unique = np.unique(np.round(output.samples[0, :, k], 6))
            assert unique.size <= 5

    def test_horizon_not_multiple_of_segment_length(self):
        history = _history()
        config = MultiCastConfig(num_samples=2, sax=SaxConfig(segment_length=6))
        output = _run(config, history, 7)
        assert output.values.shape == (7, 2)

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    def test_all_schemes_work_with_sax(self, scheme):
        history = _history()
        config = MultiCastConfig(scheme=scheme, num_samples=2, sax=SaxConfig())
        output = _run(config, history, 9)
        assert output.values.shape == (9, 2)


class TestOnPaperDatasets:
    def test_gas_rate_end_to_end(self):
        history, future = gas_rate().train_test_split(0.2)
        output = _run(
            MultiCastConfig(scheme="di", num_samples=3, seed=0),
            history,
            len(future),
        )
        # Sanity band: errors comparable to the paper's order of magnitude.
        assert rmse(future[:, 0], output.values[:, 0]) < 3.0
        assert rmse(future[:, 1], output.values[:, 1]) < 10.0

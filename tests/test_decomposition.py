"""Tests for classical decomposition and the deseasonalize extension."""

import numpy as np
import pytest

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster
from repro.data import weather
from repro.decomposition import (
    ClassicalDecomposition,
    SeasonalAdjuster,
    centered_moving_average,
    estimate_period,
)
from repro.exceptions import ConfigError, DataError
from repro.metrics import rmse


def _seasonal_series(n=120, period=12, trend=0.1, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(float(n))
    return (
        5.0
        + trend * t
        + 3.0 * np.sin(2 * np.pi * t / period)
        + noise * rng.normal(size=n)
    )


class TestCenteredMovingAverage:
    def test_constant_series_unchanged(self):
        x = np.full(20, 3.0)
        assert np.allclose(centered_moving_average(x, 4), 3.0)

    def test_linear_series_preserved_in_interior(self):
        x = np.arange(30.0)
        smoothed = centered_moving_average(x, 5)
        assert np.allclose(smoothed[5:25], x[5:25])

    def test_removes_seasonality(self):
        x = _seasonal_series(trend=0.0)
        smoothed = centered_moving_average(x, 12)
        # A period-long 2xMA averages out an additive season entirely.
        assert np.abs(smoothed[12:-12] - 5.0).max() < 0.05

    def test_output_length_matches_input(self):
        for window in (2, 3, 4, 7):
            assert centered_moving_average(np.arange(25.0), window).size == 25

    def test_validation(self):
        with pytest.raises(DataError):
            centered_moving_average(np.arange(10.0), 1)
        with pytest.raises(DataError):
            centered_moving_average(np.arange(10.0), 11)
        with pytest.raises(DataError):
            centered_moving_average(np.zeros((3, 2)), 2)


class TestClassicalDecomposition:
    def test_components_sum_to_series(self):
        x = _seasonal_series(noise=0.2, seed=1)
        decomposition = ClassicalDecomposition.fit(x, period=12)
        seasonal = decomposition.seasonal_at(np.arange(x.size))
        reconstructed = decomposition.trend + seasonal + decomposition.residual
        assert np.allclose(reconstructed, x)

    def test_seasonal_profile_sums_to_zero(self):
        x = _seasonal_series(noise=0.1, seed=2)
        decomposition = ClassicalDecomposition.fit(x, period=12)
        assert decomposition.seasonal_profile.sum() == pytest.approx(0.0, abs=1e-9)

    def test_recovers_a_known_seasonal_profile(self):
        x = _seasonal_series(noise=0.0)
        decomposition = ClassicalDecomposition.fit(x, period=12)
        expected = 3.0 * np.sin(2 * np.pi * np.arange(12) / 12.0)
        assert np.allclose(decomposition.seasonal_profile, expected, atol=0.15)

    def test_residual_is_small_for_clean_signal(self):
        x = _seasonal_series(noise=0.0)
        decomposition = ClassicalDecomposition.fit(x, period=12)
        assert np.abs(decomposition.residual[12:-12]).max() < 0.2

    def test_validation(self):
        with pytest.raises(DataError):
            ClassicalDecomposition.fit(np.arange(10.0), period=1)
        with pytest.raises(DataError):
            ClassicalDecomposition.fit(np.arange(10.0), period=8)


class TestSeasonalAdjuster:
    def test_adjust_restore_round_trip(self):
        x = _seasonal_series(noise=0.1, seed=3)
        adjuster = SeasonalAdjuster(12).fit(x)
        adjusted = adjuster.adjust(x)
        restored = adjuster.restore(adjusted, start_index=0)
        assert np.allclose(restored, x)

    def test_adjusted_series_loses_its_period(self):
        x = _seasonal_series(trend=0.0, noise=0.05, seed=4)
        adjusted = SeasonalAdjuster(12).fit(x).adjust(x)
        assert estimate_period(x) == 12
        assert estimate_period(adjusted) != 12

    def test_restore_default_continues_after_training(self):
        x = _seasonal_series(trend=0.0, noise=0.0)
        adjuster = SeasonalAdjuster(12).fit(x)
        restored = adjuster.restore(np.zeros(12))
        # Pure seasonal profile aligned to indices n .. n+11.
        expected = 3.0 * np.sin(2 * np.pi * (np.arange(120, 132)) / 12.0)
        assert np.allclose(restored, expected, atol=0.15)

    def test_restore_2d_broadcasts_over_dims(self):
        x = _seasonal_series()
        adjuster = SeasonalAdjuster(12).fit(x)
        restored = adjuster.restore(np.zeros((6, 3)))
        assert restored.shape == (6, 3)
        assert np.allclose(restored[:, 0], restored[:, 1])

    def test_unfitted_use_raises(self):
        with pytest.raises(DataError):
            SeasonalAdjuster(12).adjust(np.zeros(24))

    def test_wrong_length_adjust_raises(self):
        adjuster = SeasonalAdjuster(12).fit(_seasonal_series())
        with pytest.raises(DataError):
            adjuster.adjust(np.zeros(50))


class TestDeseasonalizedForecasting:
    def test_config_validation(self):
        MultiCastConfig(deseasonalize=12)
        MultiCastConfig(deseasonalize="auto")
        with pytest.raises(ConfigError):
            MultiCastConfig(deseasonalize=1)
        with pytest.raises(ConfigError):
            MultiCastConfig(deseasonalize="yes")

    def test_improves_weather_forecasts(self):
        """The headline of the extension: seasonal stripping fixes the
        substrate's weakness on the strongly seasonal weather data."""
        dataset = weather()
        history, future = dataset.train_test_split()
        plain = MultiCastForecaster().forecast(
            ForecastSpec(series=history, horizon=len(future), scheme="di", num_samples=3)
        )
        adjusted = MultiCastForecaster().forecast(
            ForecastSpec(
                series=history,
                horizon=len(future),
                scheme="di",
                num_samples=3,
                deseasonalize="auto",
            )
        )
        plain_error = np.mean(
            [rmse(future[:, k], plain.values[:, k]) for k in range(4)]
        )
        adjusted_error = np.mean(
            [rmse(future[:, k], adjusted.values[:, k]) for k in range(4)]
        )
        assert adjusted_error < 0.7 * plain_error
        assert adjusted.metadata["deseasonalized"] is not None

    def test_non_seasonal_dimension_passes_through(self):
        rng = np.random.default_rng(5)
        history = rng.normal(size=(100, 1))  # white noise: no period
        output = MultiCastForecaster().forecast(
            ForecastSpec(series=history, horizon=5, num_samples=2, deseasonalize="auto")
        )
        assert output.metadata["deseasonalized"] == [None]

    def test_fixed_period_recorded(self):
        x = _seasonal_series(n=100)[:, None]
        output = MultiCastForecaster().forecast(
            ForecastSpec(series=x, horizon=6, num_samples=2, deseasonalize=12)
        )
        assert output.metadata["deseasonalized"] == [12]

    def test_samples_restored_consistently_with_point_forecast(self):
        x = _seasonal_series(n=100)[:, None]
        output = MultiCastForecaster().forecast(
            ForecastSpec(
                series=x,
                horizon=6,
                num_samples=3,
                deseasonalize=12,
                aggregation="median",
            )
        )
        assert np.allclose(
            np.median(output.samples, axis=0), output.values, atol=1e-9
        )

    def test_works_with_sax(self):
        from repro.core import SaxConfig

        x = _seasonal_series(n=120)[:, None]
        output = MultiCastForecaster().forecast(
            ForecastSpec(
                series=x, horizon=9, num_samples=2, deseasonalize=12, sax=SaxConfig()
            )
        )
        assert output.values.shape == (9, 1)


class TestEstimatePeriodEdgeCases:
    """Regression pins for the constant/extreme-magnitude bug sweep."""

    def test_constant_series_reports_no_seasonality(self):
        for level in (0.0, 3.0, -7.5, 1e9, 1.5e308, 5e-324):
            assert estimate_period(np.full(50, level)) == 1

    def test_near_constant_fp_noise_reports_no_seasonality(self):
        rng = np.random.default_rng(0)
        x = np.full(64, 1e9) + rng.standard_normal(64) * 1e-4
        assert estimate_period(x) == 1

    def test_exact_linear_ramp_reports_no_seasonality(self):
        # Regression: the detrend residual of an exact ramp is pure
        # rounding noise; correlating it used to manufacture period 5.
        assert estimate_period(np.arange(1000.0) * 7.3) == 1
        assert estimate_period(np.arange(1000.0) * 1e300) == 1

    def test_extreme_magnitudes_never_crash_and_stay_correct(self):
        t = np.arange(96)
        seasonal = np.sin(2 * np.pi * t / 12)
        for scale in (1e-300, 1e-30, 1.0, 1e30, 1e307):
            assert estimate_period(seasonal * scale) == 12

    def test_alternating_extremes_detect_period_two(self):
        assert estimate_period(np.tile([1.5e308, -1.5e308], 32)) == 2

    def test_huge_random_walk_returns_valid_period(self):
        rng = np.random.default_rng(0)
        period = estimate_period(np.cumsum(rng.standard_normal(64)) * 1e305)
        assert isinstance(period, int) and period >= 1

    def test_non_finite_input_raises_typed_error(self):
        from repro.exceptions import FittingError

        bad = np.arange(16.0)
        for poison in (np.nan, np.inf, -np.inf):
            x = bad.copy()
            x[5] = poison
            with pytest.raises(FittingError, match="finite"):
                estimate_period(x)

    def test_short_series_raises_typed_error(self):
        from repro.exceptions import FittingError

        with pytest.raises(FittingError, match=">= 8"):
            estimate_period(np.arange(7.0))

    def test_no_warnings_on_edge_inputs(self):
        import warnings

        rng = np.random.default_rng(1)
        edge_inputs = [
            np.full(50, 1.5e308),
            np.tile([1.5e308, -1.5e308], 32),
            np.cumsum(rng.standard_normal(64)) * 1e305,
            rng.standard_normal(32) * 5e-324,
            np.arange(1000.0) * 1e300,
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for x in edge_inputs:
                assert estimate_period(x) >= 1


class TestDecompositionRoundTripEdgeCases:
    """Regression pins: components recombine to the input at ulp tolerance."""

    @staticmethod
    def _assert_roundtrip(x, period):
        d = ClassicalDecomposition.fit(x, period)
        recon = d.trend + d.seasonal_at(np.arange(x.size)) + d.residual
        assert np.isfinite(recon).all()
        scale = max(1.0, float(np.max(np.abs(x))))
        assert np.max(np.abs(recon - x)) <= 16 * np.finfo(float).eps * scale

    def test_round_trip_huge_magnitudes(self):
        rng = np.random.default_rng(0)
        self._assert_roundtrip(np.cumsum(rng.standard_normal(48)) * 1e305, 6)
        self._assert_roundtrip(np.full(24, 1.5e308), 4)

    def test_round_trip_alternating_extremes_exact(self):
        # The components in normalised units are exactly representable,
        # so the rescaled recombination is exact.
        self._assert_roundtrip(np.tile([1.5e308, -1.5e308], 12), 4)

    def test_round_trip_denormals(self):
        rng = np.random.default_rng(1)
        self._assert_roundtrip(rng.standard_normal(36) * 5e-320, 4)

    def test_component_overflow_raises_typed_error(self):
        # The detrended amplitude here is 1.5 x 1.7e308 — beyond float64 —
        # so the seasonal component itself is unrepresentable; the fit
        # must refuse with a typed error, never return inf components.
        x = np.tile([1.7e308, -1.7e308, -1.7e308, -1.7e308], 8)
        with pytest.raises(DataError, match="float64 range"):
            ClassicalDecomposition.fit(x, 4)

    def test_nan_and_inf_input_raise_typed_error(self):
        base = _seasonal_series(n=48)
        for poison in (np.nan, np.inf, -np.inf):
            x = base.copy()
            x[10] = poison
            with pytest.raises(DataError, match="NaN or inf"):
                ClassicalDecomposition.fit(x, 12)
        with pytest.raises(DataError, match="NaN or inf"):
            centered_moving_average(np.array([1.0, np.nan, 3.0, 4.0]), 2)

    def test_tame_path_unchanged_bitwise(self):
        # The rescale gate must not touch ordinary magnitudes: the fit of
        # a tame series is bit-identical to the pre-gate implementation.
        x = _seasonal_series(n=96, noise=0.3, seed=5)
        d = ClassicalDecomposition.fit(x, 12)
        recon = d.trend + d.seasonal_at(np.arange(x.size)) + d.residual
        assert np.max(np.abs(recon - x)) <= 4 * np.finfo(float).eps * np.max(np.abs(x))
        assert abs(d.seasonal_profile.sum()) < 1e-12

"""Unit and property tests for repro.scaling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ScalingError
from repro.scaling import (
    FixedDigitScaler,
    MinMaxScaler,
    MultivariateScaler,
    PercentileScaler,
    ZScoreScaler,
)


class TestFixedDigitScaler:
    def test_codes_are_within_digit_budget(self):
        rng = np.random.default_rng(0)
        x = rng.normal(50.0, 10.0, size=200)
        scaler = FixedDigitScaler(num_digits=3).fit(x)
        codes = scaler.transform(x)
        assert codes.dtype == np.int64
        assert codes.min() >= 0
        assert codes.max() <= 999

    def test_round_trip_error_bounded_by_resolution(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-5.0, 5.0, size=300)
        scaler = FixedDigitScaler(num_digits=3).fit(x)
        recovered = scaler.inverse_transform(scaler.transform(x))
        assert np.max(np.abs(recovered - x)) <= scaler.resolution / 2 + 1e-12

    def test_more_digits_means_finer_resolution(self):
        x = np.linspace(0.0, 1.0, 50)
        r2 = FixedDigitScaler(num_digits=2).fit(x).resolution
        r4 = FixedDigitScaler(num_digits=4).fit(x).resolution
        assert r4 < r2 / 50

    def test_constant_series_round_trips(self):
        x = np.full(10, 42.0)
        scaler = FixedDigitScaler(num_digits=3).fit(x)
        recovered = scaler.inverse_transform(scaler.transform(x))
        assert np.allclose(recovered, 42.0, atol=scaler.resolution)

    def test_headroom_leaves_room_above_history(self):
        x = np.linspace(0.0, 10.0, 100)
        scaler = FixedDigitScaler(num_digits=3, headroom=0.2).fit(x)
        # The max historical value should not map to the top code.
        assert scaler.transform(np.array([10.0]))[0] < scaler.max_int

    def test_out_of_span_values_clip(self):
        x = np.linspace(0.0, 1.0, 10)
        scaler = FixedDigitScaler(num_digits=2, headroom=0.0).fit(x)
        assert scaler.transform(np.array([99.0]))[0] == scaler.max_int
        assert scaler.transform(np.array([-99.0]))[0] == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler().transform(np.ones(3))


class TestScalerNumericEdgeCases:
    """Shrunk fuzz counterexamples pinned as regressions (PR 4).

    Each case used to produce NaN/garbage codes or a silent collapse;
    the scalers now either handle the magnitude or refuse cleanly.
    """

    @pytest.mark.parametrize("value", [1e300, -1e300, 1e-300, 0.0, 5e-324])
    def test_fixed_constant_series_round_trips_at_any_magnitude(self, value):
        # Shrunk counterexample: constant 1e300 absorbed the 0.5 widening,
        # leaving a zero span; 0/0 codes then int-cast to -2**63.
        x = np.full(4, value)
        scaler = FixedDigitScaler(num_digits=3).fit(x)
        codes = scaler.transform(x)
        assert codes.dtype == np.int64
        assert 0 <= codes.min() and codes.max() <= scaler.max_int
        recovered = scaler.inverse_transform(codes)
        assert np.isfinite(recovered).all()
        assert np.abs(recovered - x).max() <= scaler.resolution

    def test_fixed_resolution_defined_for_constant_series(self):
        scaler = FixedDigitScaler(num_digits=3).fit(np.full(5, 1e300))
        assert np.isfinite(scaler.resolution) and scaler.resolution > 0

    def test_fixed_unrepresentable_span_raises_cleanly(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler(num_digits=3).fit(np.array([-1.5e308, 1.5e308]))
        # Headroom overflow on a just-representable raw span as well.
        with pytest.raises(ScalingError):
            FixedDigitScaler(num_digits=3).fit(np.array([-8e307, 8e307]))

    def test_fixed_denormal_span_round_trips(self):
        x = np.array([0.0, 5e-324])
        scaler = FixedDigitScaler(num_digits=3).fit(x)
        recovered = scaler.inverse_transform(scaler.transform(x))
        assert np.isfinite(recovered).all()

    def test_minmax_constant_series_at_huge_magnitude(self):
        # Shrunk counterexample: lo + 1.0 == lo at 1e300, zero span, NaN out.
        scaler = MinMaxScaler().fit(np.full(4, 1e300))
        y = scaler.transform(np.full(2, 1e300))
        assert np.isfinite(y).all()
        assert np.allclose(y, 0.5)

    def test_zscore_huge_same_sign_magnitudes_do_not_overflow_mean(self):
        # Shrunk counterexample: the plain sum of four 1.5e308 values is
        # inf, so the mean (and every transformed value) went non-finite.
        x = np.full(4, 1.5e308)
        scaler = ZScoreScaler().fit(x)
        y = scaler.transform(x)
        assert np.isfinite(y).all()
        assert np.allclose(y, 0.0)

    def test_zscore_unrepresentable_spread_raises_cleanly(self):
        with pytest.raises(ScalingError):
            ZScoreScaler().fit(np.array([-1.5e308, 1.5e308, 0.0, 1.0]))

    def test_percentile_unrepresentable_offset_raises_cleanly(self):
        with pytest.raises(ScalingError):
            PercentileScaler().fit(np.array([-1.5e308, 1.5e308]))

    def test_invalid_num_digits_raises(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler(num_digits=0)

    def test_negative_headroom_raises(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler(headroom=-0.1)

    def test_nan_input_raises(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler().fit(np.array([1.0, np.nan]))

    def test_2d_input_raises(self):
        with pytest.raises(ScalingError):
            FixedDigitScaler().fit(np.zeros((3, 2)))


class TestPercentileScaler:
    def test_llmtime_defaults_scale_to_unit_quantile(self):
        rng = np.random.default_rng(2)
        x = np.abs(rng.normal(size=1000)) * 7.0
        scaler = PercentileScaler(alpha_quantile=0.99, beta_quantile=0.0).fit(x)
        y = scaler.transform(x)
        # 99% of offset values fall below 1 after scaling.
        assert np.quantile(np.abs(y), 0.99) == pytest.approx(1.0, rel=1e-6)

    def test_round_trip_exact(self):
        rng = np.random.default_rng(3)
        x = rng.normal(3.0, 2.0, size=100)
        scaler = PercentileScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_constant_series_does_not_divide_by_zero(self):
        scaler = PercentileScaler().fit(np.full(5, 3.0))
        assert np.isfinite(scaler.transform(np.full(5, 3.0))).all()

    def test_invalid_quantiles_raise(self):
        with pytest.raises(ScalingError):
            PercentileScaler(alpha_quantile=0.0)
        with pytest.raises(ScalingError):
            PercentileScaler(beta_quantile=1.5)


class TestZScoreScaler:
    def test_standardises(self):
        rng = np.random.default_rng(4)
        x = rng.normal(5.0, 3.0, size=5000)
        y = ZScoreScaler().fit_transform(x)
        assert y.mean() == pytest.approx(0.0, abs=1e-9)
        assert y.std() == pytest.approx(1.0, abs=1e-9)

    def test_round_trip(self):
        x = np.array([1.0, 2.0, 9.0])
        scaler = ZScoreScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_constant_series_guarded(self):
        scaler = ZScoreScaler().fit(np.ones(4))
        assert np.allclose(scaler.transform(np.ones(4)), 0.0)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        x = np.array([2.0, 4.0, 6.0])
        y = MinMaxScaler().fit_transform(x)
        assert y.min() == 0.0 and y.max() == 1.0

    def test_round_trip(self):
        x = np.array([-3.0, 0.0, 5.0])
        scaler = MinMaxScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)


class TestMultivariateScaler:
    def test_each_dimension_scaled_independently(self):
        x = np.stack([np.linspace(0, 1, 50), np.linspace(100, 200, 50)], axis=1)
        scaler = MultivariateScaler(lambda: FixedDigitScaler(num_digits=2)).fit(x)
        codes = scaler.transform(x)
        assert codes.shape == x.shape
        # Both dimensions use the full code range despite different scales.
        assert codes[:, 0].max() == codes[:, 1].max()

    def test_round_trip_within_resolution(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(80, 3)) * np.array([1.0, 100.0, 0.01])
        scaler = MultivariateScaler(lambda: FixedDigitScaler(num_digits=3)).fit(x)
        recovered = scaler.inverse_transform(scaler.transform(x))
        for i in range(3):
            tol = scaler.scalers[i].resolution
            assert np.max(np.abs(recovered[:, i] - x[:, i])) <= tol

    def test_dimension_count_enforced(self):
        x = np.zeros((10, 2))
        scaler = MultivariateScaler(ZScoreScaler).fit(x)
        with pytest.raises(ScalingError):
            scaler.transform(np.zeros((10, 3)))

    def test_use_before_fit_raises(self):
        with pytest.raises(ScalingError):
            MultivariateScaler(ZScoreScaler).transform(np.zeros((4, 2)))

    def test_1d_input_raises(self):
        with pytest.raises(ScalingError):
            MultivariateScaler(ZScoreScaler).fit(np.zeros(5))


series_strategy = st.lists(
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    min_size=2,
    max_size=100,
)


@given(series_strategy, st.integers(min_value=1, max_value=5))
def test_fixed_digit_round_trip_property(xs, digits):
    x = np.asarray(xs)
    scaler = FixedDigitScaler(num_digits=digits).fit(x)
    recovered = scaler.inverse_transform(scaler.transform(x))
    assert np.max(np.abs(recovered - x)) <= scaler.resolution / 2 + 1e-9


@given(series_strategy)
def test_fixed_digit_codes_in_range_property(xs):
    x = np.asarray(xs)
    scaler = FixedDigitScaler(num_digits=3).fit(x)
    codes = scaler.transform(x)
    assert ((codes >= 0) & (codes <= 999)).all()


@given(series_strategy)
def test_zscore_round_trip_property(xs):
    x = np.asarray(xs)
    scaler = ZScoreScaler().fit(x)
    recovered = scaler.inverse_transform(scaler.transform(x))
    scale = max(1.0, np.max(np.abs(x)))
    assert np.max(np.abs(recovered - x)) / scale < 1e-9


@given(series_strategy)
def test_fixed_digit_monotone_property(xs):
    """Scaling preserves order: larger values never get smaller codes."""
    x = np.asarray(xs)
    scaler = FixedDigitScaler(num_digits=4).fit(x)
    codes = scaler.transform(np.sort(x))
    assert (np.diff(codes) >= 0).all()

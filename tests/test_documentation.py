"""Documentation contracts: every public item is exported and documented.

Deliverable (e) requires doc comments on every public item.  This test
walks each package's ``__all__``, asserting (i) the name actually resolves,
(ii) it carries a non-trivial docstring, and (iii) the package module
itself is documented.  Doctests embedded in docstrings are executed too.
"""

import doctest
import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.scaling",
    "repro.encoding",
    "repro.sax",
    "repro.llm",
    "repro.baselines",
    "repro.data",
    "repro.decomposition",
    "repro.metrics",
    "repro.evaluation",
    "repro.experiments",
    "repro.tasks",
    "repro.cli",
    "repro.exceptions",
    "repro.serving",
    "repro.observability",
    "repro.scheduling",
    "repro.gateway",
    "repro.loadtest",
    "repro.sharding",
    "repro.sweeps",
    "repro.adapters",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_module_is_documented(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, package_name


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_names_resolve_and_are_documented(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} not importable"
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__ and item.__doc__.strip(), (
                f"{package_name}.{name} lacks a docstring"
            )


def _documented_somewhere(cls, method_name, method) -> bool:
    """A method is documented if it or any base's same-named method is.

    Overrides of a documented abstract protocol (``LanguageModel.reset``,
    ``Scaler.fit``, ``Multiplexer.mux``, …) inherit their contract from the
    base; repeating the docstring on every override would be noise.
    """
    if method.__doc__ and method.__doc__.strip():
        return True
    for base in cls.__mro__[1:]:
        parent = base.__dict__.get(method_name)
        if parent is not None and getattr(parent, "__doc__", None):
            return True
    return False


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_document_their_public_methods(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for method_name, method in inspect.getmembers(item, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != item.__name__:
                continue  # defined on a parent; checked there
            assert _documented_somewhere(item, method_name, method), (
                f"{package_name}.{name}.{method_name} lacks a docstring"
            )


def test_forecaster_doctest_runs():
    """The usage example embedded in MultiCastForecaster must stay true."""
    from repro.core import forecaster

    results = doctest.testmod(forecaster, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


from pathlib import Path  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent

#: Every prose document whose fenced ``python`` blocks must actually run.
#: Blocks fenced ```` ```python noexec ```` are skipped (illustrative
#: fragments); everything fenced plain ```` ```python ```` executes in
#: file order, sharing one namespace per file, so each document is a
#: runnable script from top to bottom.
DOCUMENTS = [
    "README.md",
    "docs/API.md",
    "docs/TUTORIAL.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVING.md",
]

#: Substitutions applied before execution to keep the suite fast — the
#: documents show realistic settings; the tests shrink the sample counts.
SPEEDUPS = [
    ("num_samples=5", "num_samples=2"),
    ("--samples 5", "--samples 2"),
]


def extract_python_blocks(text: str) -> list[str]:
    """Fenced code blocks whose info string is exactly ``python``."""
    blocks: list[str] = []
    inside = False
    executable = False
    current: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not inside and stripped.startswith("```"):
            inside = True
            executable = stripped[3:].strip() == "python"
            current = []
        elif inside and stripped.startswith("```"):
            inside = False
            if executable:
                blocks.append("\n".join(current))
        elif inside:
            current.append(line)
    return blocks


@pytest.mark.parametrize("relative_path", DOCUMENTS)
def test_documentation_code_blocks_run(relative_path, tmp_path, monkeypatch):
    """Every ``python`` block in the prose docs executes, in file order.

    Blocks run from a temporary working directory so examples that write
    artifacts (ledgers, metric dumps) stay out of the repository.
    """
    path = ROOT / relative_path
    assert path.exists(), f"{relative_path} is missing"
    blocks = extract_python_blocks(path.read_text())
    assert blocks, f"{relative_path} has no executable python blocks"
    monkeypatch.chdir(tmp_path)
    namespace: dict = {}
    for index, block in enumerate(blocks):
        code = block
        for old, new in SPEEDUPS:
            code = code.replace(old, new)
        exec(  # noqa: S102 - executing our own documentation is the point
            compile(code, f"<{relative_path} block {index}>", "exec"), namespace
        )

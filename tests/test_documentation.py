"""Documentation contracts: every public item is exported and documented.

Deliverable (e) requires doc comments on every public item.  This test
walks each package's ``__all__``, asserting (i) the name actually resolves,
(ii) it carries a non-trivial docstring, and (iii) the package module
itself is documented.  Doctests embedded in docstrings are executed too.
"""

import doctest
import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.scaling",
    "repro.encoding",
    "repro.sax",
    "repro.llm",
    "repro.baselines",
    "repro.data",
    "repro.decomposition",
    "repro.metrics",
    "repro.evaluation",
    "repro.experiments",
    "repro.tasks",
    "repro.cli",
    "repro.exceptions",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_module_is_documented(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, package_name


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_names_resolve_and_are_documented(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} not importable"
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__ and item.__doc__.strip(), (
                f"{package_name}.{name} lacks a docstring"
            )


def _documented_somewhere(cls, method_name, method) -> bool:
    """A method is documented if it or any base's same-named method is.

    Overrides of a documented abstract protocol (``LanguageModel.reset``,
    ``Scaler.fit``, ``Multiplexer.mux``, …) inherit their contract from the
    base; repeating the docstring on every override would be noise.
    """
    if method.__doc__ and method.__doc__.strip():
        return True
    for base in cls.__mro__[1:]:
        parent = base.__dict__.get(method_name)
        if parent is not None and getattr(parent, "__doc__", None):
            return True
    return False


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_document_their_public_methods(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for method_name, method in inspect.getmembers(item, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != item.__name__:
                continue  # defined on a parent; checked there
            assert _documented_somewhere(item, method_name, method), (
                f"{package_name}.{name}.{method_name} lacks a docstring"
            )


def test_forecaster_doctest_runs():
    """The usage example embedded in MultiCastForecaster must stay true."""
    from repro.core import forecaster

    results = doctest.testmod(forecaster, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_readme_quickstart_code_runs():
    """The README's quickstart block, executed verbatim."""
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    blocks = []
    inside = False
    current: list[str] = []
    for line in text.splitlines():
        if line.startswith("```python"):
            inside = True
            current = []
        elif line.startswith("```") and inside:
            inside = False
            blocks.append("\n".join(current))
        elif inside:
            current.append(line)
    assert blocks, "README has no python blocks"
    namespace: dict = {}
    # Keep it quick: shrink the sample count before executing.
    code = blocks[0].replace("num_samples=5", "num_samples=2")
    exec(compile(code, "<README quickstart>", "exec"), namespace)
    # Subsequent blocks reuse names from the first.
    for extra in blocks[1:]:
        exec(compile(extra, "<README block>", "exec"), namespace)

"""Tests for the per-table/figure experiment drivers (reduced sample counts).

The full paper-parameter runs live in ``benchmarks/``; these tests exercise
the same drivers with small sample counts to keep the suite fast, asserting
the structural properties each table must have.
"""

import numpy as np
import pytest

from repro.experiments import (
    figure_2,
    figure_3,
    figure_6,
    figure_8,
    table_i,
    table_iii,
    table_iv,
    table_vii,
    table_viii,
    table_ix,
)


class TestTableI:
    def test_matches_paper_exactly(self):
        table = table_i()
        assert table.cell("gas_rate", "Dimensions") == 2
        assert table.cell("gas_rate", "Length") == 296
        assert table.cell("electricity", "Dimensions") == 3
        assert table.cell("electricity", "Length") == 242
        assert table.cell("weather", "Dimensions") == 4
        assert table.cell("weather", "Length") == 217


class TestTableIII:
    def test_llama_beats_phi_on_both_dimensions(self):
        table = table_iii(num_samples=3)
        for dim in ("GasRate", "CO2"):
            llama = table.cell("MultiCast (LLaMA2 / 7B)", dim)
            phi = table.cell("MultiCast (Phi-2 / 2.7B)", dim)
            assert llama < phi, dim
            # The paper reports roughly a 2x gap; require a clear margin.
            assert phi / llama > 1.3, dim


class TestTableIV:
    def test_all_methods_produce_finite_errors(self):
        table = table_iv(num_samples=2)
        assert len(table.rows) == 6
        for row in table.rows:
            assert all(np.isfinite(v) for v in row[1:]), row[0]

    def test_errors_in_plausible_bands(self):
        table = table_iv(num_samples=2)
        for row in table.rows:
            # GasRate dim: paper range 0.70-1.15; allow a generous band.
            assert 0.1 < row[1] < 4.0, row[0]
            # CO2 dim: paper range 2.6-4.6; our band is wider.
            assert 0.3 < row[2] < 10.0, row[0]


class TestTableVII:
    def test_time_doubles_with_samples(self):
        table = table_vii(sample_counts=(2, 4, 8))
        for method in ("MultiCast (DI)", "MultiCast (VC)", "LLMTIME"):
            seconds = [table.cell(f"{method} [sec]", c) for c in ("2", "4", "8")]
            assert seconds[1] == pytest.approx(2 * seconds[0], rel=0.05)
            assert seconds[2] == pytest.approx(4 * seconds[0], rel=0.05)

    def test_vc_is_slowest_multicast_variant(self):
        table = table_vii(sample_counts=(2,))
        di = table.cell("MultiCast (DI) [sec]", "2")
        vc = table.cell("MultiCast (VC) [sec]", "2")
        assert vc > di


class TestTableVIII:
    def test_sax_is_an_order_of_magnitude_faster(self):
        # Paper ratios: 1168/148 ≈ 7.9x at w=3 up to 1168/52 ≈ 22x at w=9.
        table = table_viii(num_samples=2)
        raw_seconds = table.cell("MultiCast [sec]", "3")
        for kind in ("alphabetical", "digital"):
            assert table.cell(f"MultiCast SAX ({kind}) [sec]", "3") * 5 < raw_seconds
            assert table.cell(f"MultiCast SAX ({kind}) [sec]", "9") * 10 < raw_seconds

    def test_time_falls_with_segment_length(self):
        table = table_viii(num_samples=2)
        seconds = [
            table.cell("MultiCast SAX (alphabetical) [sec]", w)
            for w in ("3", "6", "9")
        ]
        assert seconds[0] > seconds[1] > seconds[2]


class TestTableIX:
    def test_digital_sax_is_na_at_twenty(self):
        table = table_ix(num_samples=2)
        assert table.cell("MultiCast SAX (digital)", "20") == "N/A"
        assert table.cell("MultiCast SAX (digital) [sec]", "20") == "N/A"

    def test_time_flat_in_alphabet_size(self):
        table = table_ix(num_samples=2)
        seconds = [
            table.cell("MultiCast SAX (alphabetical) [sec]", a)
            for a in ("5", "10", "20")
        ]
        assert max(seconds) - min(seconds) <= 0.1 * max(seconds) + 1

    def test_alphabetical_reaches_twenty(self):
        table = table_ix(num_samples=2)
        assert isinstance(table.cell("MultiCast SAX (alphabetical)", "20"), float)


class TestFigures:
    def test_figure_2_overlays_both_backends(self):
        figure = figure_2(num_samples=2)
        assert set(figure.forecasts) == {"llama2-sim", "phi2-sim"}
        assert figure.actual.shape == figure.forecasts["llama2-sim"].shape
        chart = figure.render()
        assert "Figure 2" in chart
        assert "llama2-sim" in chart

    def test_figure_2_llama_closer_than_phi(self):
        figure = figure_2(num_samples=3)
        assert figure.rmse_of("llama2-sim") < figure.rmse_of("phi2-sim")

    def test_figure_3_includes_arima(self):
        figure = figure_3(num_samples=2)
        assert "arima" in figure.forecasts

    def test_figure_6_has_three_segment_lengths(self):
        figure = figure_6(num_samples=2)
        assert set(figure.forecasts) == {"sax-w3", "sax-w6", "sax-w9"}

    def test_figure_8_digital_symbols(self):
        figure = figure_8(num_samples=2)
        assert set(figure.forecasts) == {"sax-digital"}

    def test_figure_csv_round_trip(self, tmp_path):
        figure = figure_2(num_samples=2)
        path = tmp_path / "figure2.csv"
        figure.save_csv(path)
        header = path.read_text().splitlines()[0]
        assert header == "t,history,actual,llama2-sim,phi2-sim"

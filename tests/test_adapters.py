"""Tests for the sktime-style adapter layer (no sktime required)."""

import sys

import numpy as np
import pytest

from repro.adapters import ForecastingHorizon, MultiCastForecaster, coerce_horizon
from repro.core import ForecastSpec
from repro.core import MultiCastForecaster as CoreForecaster
from repro.exceptions import ConfigError, DataError, FittingError

RNG = np.random.default_rng(11)
SERIES = np.cumsum(RNG.normal(size=(36, 2)), axis=0) + 20.0


class TestForecastingHorizon:
    def test_int_horizon_is_relative_steps(self):
        fh = ForecastingHorizon(3)
        assert fh.is_relative
        assert fh.values == (1, 2, 3)
        assert len(fh) == 3

    def test_iterable_horizon_is_sorted(self):
        fh = ForecastingHorizon([4, 2])
        assert fh.values == (2, 4)

    def test_duplicate_steps_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ForecastingHorizon([4, 2, 4])

    def test_empty_horizon_rejected(self):
        with pytest.raises(ConfigError):
            ForecastingHorizon([])

    def test_absolute_to_relative(self):
        fh = ForecastingHorizon([12, 14], is_relative=False)
        assert fh.to_relative(10).values == (2, 4)

    def test_absolute_before_cutoff_rejected(self):
        fh = ForecastingHorizon([8, 12], is_relative=False)
        with pytest.raises(ConfigError, match="offending relative steps"):
            fh.to_relative(10)

    def test_coerce_accepts_duck_typed_sktime_horizon(self):
        class FakeSktimeFH:
            is_relative = False

            def to_relative(self, cutoff):
                class Relative:
                    is_relative = True

                    def to_relative(self, cutoff):
                        return self

                    def __iter__(self):
                        return iter([1, 3])

                return Relative()

        steps = coerce_horizon(FakeSktimeFH(), cutoff=10)
        assert steps.tolist() == [1, 3]

    def test_coerce_rejects_junk(self):
        with pytest.raises(ConfigError):
            coerce_horizon(object(), cutoff=5)


class TestMultiCastForecasterAdapter:
    def test_does_not_import_sktime(self):
        assert "sktime" not in sys.modules

    def test_fit_predict_matches_core_bit_for_bit(self):
        adapter = MultiCastForecaster(
            model="uniform-sim", num_samples=2, seed=5
        )
        adapter.fit(SERIES)
        predicted = adapter.predict(4)
        spec = ForecastSpec(
            series=SERIES, horizon=4, model="uniform-sim",
            num_samples=2, seed=5,
        )
        direct = CoreForecaster().forecast(spec).values
        assert np.array_equal(predicted, direct)

    def test_predict_matches_direct_engine_forecast(self):
        from repro.serving import ForecastEngine

        with ForecastEngine() as engine:
            adapter = MultiCastForecaster(
                model="uniform-sim", num_samples=2, seed=3, engine=engine
            )
            adapter.fit(SERIES)
            predicted = adapter.predict(3)
            direct = engine.forecast(adapter.spec_for(3)).values
        assert np.array_equal(predicted, np.asarray(direct))

    def test_subset_horizon_indexes_full_forecast(self):
        adapter = MultiCastForecaster(model="uniform-sim", num_samples=1)
        adapter.fit(SERIES)
        full = adapter.predict(5)
        subset = adapter.predict(ForecastingHorizon([2, 5]))
        assert np.array_equal(subset, full[[1, 4]])

    def test_absolute_horizon_uses_cutoff(self):
        adapter = MultiCastForecaster(model="uniform-sim", num_samples=1)
        adapter.fit(SERIES)
        assert adapter.cutoff == SERIES.shape[0]
        absolute = ForecastingHorizon(
            [SERIES.shape[0] + 2], is_relative=False
        )
        assert np.array_equal(
            adapter.predict(absolute), adapter.predict(4)[[1]]
        )

    def test_predict_before_fit_raises(self):
        with pytest.raises(FittingError):
            MultiCastForecaster(model="uniform-sim").predict(2)

    def test_fit_rejects_empty_history(self):
        with pytest.raises(DataError):
            MultiCastForecaster(model="uniform-sim").fit(
                np.empty((0, 2))
            )

    def test_bad_knob_fails_at_construction(self):
        with pytest.raises(Exception):
            MultiCastForecaster(scheme="nope")

    def test_get_params_round_trip_and_clone(self):
        adapter = MultiCastForecaster(
            model="uniform-sim", num_samples=3, scheme="di", seed=9
        )
        params = adapter.get_params()
        rebuilt = MultiCastForecaster(**params)
        assert rebuilt.get_params() == params
        twin = adapter.clone()
        assert twin.get_params() == params
        with pytest.raises(FittingError):
            twin.predict(2)

    def test_set_params_revalidates(self):
        adapter = MultiCastForecaster(model="uniform-sim")
        adapter.set_params(num_samples=4)
        assert adapter.get_params()["num_samples"] == 4
        with pytest.raises(ConfigError):
            adapter.set_params(not_a_knob=1)

    def test_get_test_params_construct(self):
        for params in MultiCastForecaster.get_test_params():
            MultiCastForecaster(**params)

    def test_univariate_input_is_lifted(self):
        adapter = MultiCastForecaster(model="uniform-sim", num_samples=1)
        adapter.fit(SERIES[:, 0])
        assert adapter.predict(2).shape == (2, 1)

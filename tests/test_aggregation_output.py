"""Tests for sample aggregation, ForecastOutput, and the shift-bias wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ForecastOutput, aggregate_samples
from repro.exceptions import ConfigError, DataError, GenerationError
from repro.llm import PPMLanguageModel, ShiftBiasedLM, UniformLM


class TestAggregation:
    def _samples(self):
        # 5 samples, 2 timestamps, 1 dim; values engineered per cell.
        return np.array(
            [[[1.0], [10.0]], [[2.0], [20.0]], [[3.0], [30.0]],
             [[4.0], [40.0]], [[100.0], [50.0]]]
        )

    def test_median_is_outlier_robust(self):
        point = aggregate_samples(self._samples(), "median")
        assert point[0, 0] == 3.0

    def test_mean_is_not(self):
        point = aggregate_samples(self._samples(), "mean")
        assert point[0, 0] == pytest.approx(22.0)

    def test_trimmed_mean_drops_extremes(self):
        point = aggregate_samples(self._samples(), "trimmed_mean")
        assert point[0, 0] == pytest.approx(3.0)  # mean of 2, 3, 4

    def test_trimmed_mean_with_few_samples_falls_back_to_median(self):
        samples = self._samples()[:3]
        assert np.allclose(
            aggregate_samples(samples, "trimmed_mean"),
            aggregate_samples(samples, "median"),
        )

    def test_single_sample_passthrough(self):
        samples = self._samples()[:1]
        assert np.allclose(aggregate_samples(samples, "median"), samples[0])

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            aggregate_samples(self._samples(), "mode")

    def test_wrong_shape_rejected(self):
        with pytest.raises(DataError):
            aggregate_samples(np.zeros((3, 4)), "median")

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            aggregate_samples(np.zeros((0, 2, 1)), "median")


class TestForecastOutput:
    def _output(self):
        return ForecastOutput(
            values=np.zeros((4, 2)),
            samples=np.zeros((3, 4, 2)),
            prompt_tokens=100,
            generated_tokens=60,
            simulated_seconds=30.0,
            model_name="test",
        )

    def test_properties(self):
        output = self._output()
        assert output.horizon == 4
        assert output.num_dims == 2
        assert output.num_samples == 3
        assert output.total_tokens == 160

    def test_dimension_accessor(self):
        output = self._output()
        assert output.dimension(1).shape == (4,)
        with pytest.raises(DataError):
            output.dimension(2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            ForecastOutput(values=np.zeros((4, 2)), samples=np.zeros((3, 5, 2)))

    def test_1d_values_rejected(self):
        with pytest.raises(DataError):
            ForecastOutput(values=np.zeros(4), samples=np.zeros((3, 4, 1)))


class TestShiftBiasedLM:
    def test_moves_mass_upward(self):
        base = UniformLM(vocab_size=11)
        shifted = ShiftBiasedLM(base, shift_weight=0.5, shift_steps=1)
        shifted.reset([])
        probs = shifted.next_distribution()
        # Digit 0 loses half its mass; digit 9 accumulates; separator intact.
        assert probs[0] == pytest.approx(0.5 / 11)
        assert probs[9] > probs[5] > probs[0]
        assert probs[10] == pytest.approx(1.0 / 11)

    def test_distribution_stays_proper(self):
        base = PPMLanguageModel(vocab_size=11, max_order=3)
        shifted = ShiftBiasedLM(base, shift_weight=0.8, shift_steps=5)
        shifted.reset([0, 1, 2, 10] * 8)
        probs = shifted.next_distribution()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_zero_weight_is_identity(self):
        base = PPMLanguageModel(vocab_size=11, max_order=3)
        shifted = ShiftBiasedLM(
            PPMLanguageModel(vocab_size=11, max_order=3), shift_weight=0.0
        )
        context = [3, 1, 4, 10] * 5
        base.reset(context)
        shifted.reset(context)
        assert np.allclose(base.next_distribution(), shifted.next_distribution())

    def test_decoded_values_shift_upward_on_average(self):
        """The Phi-2 failure mode: output tracks but sits above the truth."""
        rng = np.random.default_rng(0)
        base = PPMLanguageModel(vocab_size=11, max_order=6)
        shifted = ShiftBiasedLM(
            PPMLanguageModel(vocab_size=11, max_order=6),
            shift_weight=0.8,
            shift_steps=3,
        )
        context = ([5, 0, 0, 10]) * 30  # the value 500 repeated
        base_first = []
        shifted_first = []
        for _ in range(30):
            base.reset(context)
            shifted.reset(context)
            digits = frozenset(range(10))
            base_first.append(
                base.generate(context, 1, rng, temperature=1.0).tokens[0]
            )
            shifted.reset(context)
            shifted_first.append(
                shifted.generate(context, 1, rng, temperature=1.0).tokens[0]
            )
        assert np.mean(shifted_first) > np.mean(base_first) + 1.0

    def test_invalid_args(self):
        base = UniformLM(vocab_size=5)
        with pytest.raises(GenerationError):
            ShiftBiasedLM(base, shift_weight=1.0)
        with pytest.raises(GenerationError):
            ShiftBiasedLM(base, shift_weight=-0.1)
        with pytest.raises(GenerationError):
            ShiftBiasedLM(base, shift_steps=0)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30)
def test_aggregation_between_min_and_max_property(num_samples, horizon, dims):
    rng = np.random.default_rng(num_samples * 100 + horizon * 10 + dims)
    samples = rng.normal(size=(num_samples, horizon, dims))
    for method in ("median", "mean", "trimmed_mean"):
        point = aggregate_samples(samples, method)
        assert (point >= samples.min(axis=0) - 1e-12).all()
        assert (point <= samples.max(axis=0) + 1e-12).all()

"""Tests for multi-process sharded serving: routing, spill tier, recovery.

The load-bearing contract is bit-identity: a :class:`ShardedEngine` with
any shard count must produce byte-for-byte the single-process engine's
forecasts under fixed seeds — sharding buys throughput, never a different
answer.  The crash tests use the engine's ``chaos_delay_seconds``
failure-injection knob to hold a request in-flight deterministically
while its worker is killed.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.core import ForecastSpec, MultiCastConfig
from repro.data import synthetic_multivariate
from repro.exceptions import ConfigError
from repro.gateway import ForecastGateway
from repro.llm.simulated import get_model
from repro.llm.state_cache import IngestStateCache
from repro.observability import SpanCollector, Tracer
from repro.serving import ForecastEngine, ForecastRequest
from repro.sharding import (
    ShardedEngine,
    SpillStore,
    rendezvous_ranking,
    rendezvous_shard,
)

HISTORY = synthetic_multivariate(n=64, num_dims=2, seed=9).values

MODEL_NAME = "uniform-sim"
VOCAB = 4096


def _spec(seed=0, execution="batched", num_samples=2, horizon=4):
    config = MultiCastConfig(
        num_samples=num_samples, model=MODEL_NAME, seed=seed
    )
    return ForecastSpec.from_config(
        config, series=HISTORY, horizon=horizon, execution=execution
    )


def _prefilled(prompt):
    """A substrate model prefilled on ``prompt`` (what the cache stores)."""
    model = get_model(MODEL_NAME, vocab_size=VOCAB).spec.factory(VOCAB)
    model.reset(prompt)
    return model


# -- rendezvous routing --------------------------------------------------------


def test_rendezvous_is_deterministic_and_in_range():
    shards = [0, 1, 2, 3]
    for key in ("abcd" * 8, "0123" * 8, "ffff" * 8):
        first = rendezvous_shard(key, shards)
        assert first in shards
        assert rendezvous_shard(key, shards) == first
        ranking = rendezvous_ranking(key, shards)
        assert sorted(ranking) == shards  # a permutation, no repeats


def test_rendezvous_rejects_empty_shard_list():
    with pytest.raises(Exception):
        rendezvous_ranking("aa", [])


def test_rendezvous_spreads_keys_roughly_evenly():
    shards = [0, 1, 2, 3]
    rng = np.random.default_rng(0)
    counts = {shard: 0 for shard in shards}
    for _ in range(2000):
        key = "".join(rng.choice(list("0123456789abcdef"), size=16))
        counts[rendezvous_shard(key, shards)] += 1
    for count in counts.values():
        assert 0.15 * 2000 < count < 0.35 * 2000, counts


def test_rendezvous_disruption_is_minimal():
    """Removing one shard only moves the keys that lived on it."""
    shards = [0, 1, 2, 3]
    rng = np.random.default_rng(1)
    keys = [
        "".join(rng.choice(list("0123456789abcdef"), size=16))
        for _ in range(500)
    ]
    before = {key: rendezvous_shard(key, shards) for key in keys}
    survivors = [0, 1, 3]
    for key in keys:
        after = rendezvous_shard(key, survivors)
        if before[key] != 2:
            assert after == before[key]
        else:
            assert after in survivors


# -- spill store ---------------------------------------------------------------


def test_spill_store_validates_budget(tmp_path):
    with pytest.raises(ConfigError):
        SpillStore(tmp_path, max_tokens=-1)
    disabled = SpillStore(tmp_path / "off", max_tokens=0)
    assert not disabled.enabled
    disabled.store(MODEL_NAME, VOCAB, (1, 2, 3), _prefilled((1, 2, 3)))
    assert disabled.fetch(MODEL_NAME, VOCAB, (1, 2, 3)) == (None, 0)


def test_eviction_demotes_into_spill_and_lookup_promotes_back(tmp_path):
    spill = SpillStore(tmp_path, max_tokens=10_000)
    cache = IngestStateCache(max_tokens=40, spill=spill)
    short = tuple(range(20))
    long = tuple(range(100, 130))
    cache.put(MODEL_NAME, VOCAB, short, _prefilled(short))
    cache.put(MODEL_NAME, VOCAB, long, _prefilled(long))  # evicts `short`
    assert spill.stats["entries"] == 1

    lookup = cache.get(MODEL_NAME, VOCAB, short)
    assert lookup.outcome == "fork"
    assert lookup.matched == len(short)
    assert cache.stats["spill_hits"] == 1
    # Promotion: the next lookup resolves from memory, not the spill tier.
    hits_before = spill.stats["hits"]
    assert cache.get(MODEL_NAME, VOCAB, short).outcome == "fork"
    assert spill.stats["hits"] == hits_before


def test_spill_state_migrates_across_cache_instances(tmp_path):
    """Worker A's eviction is worker B's warm start (shared directory)."""
    prompt = tuple(range(24))
    first = IngestStateCache(
        max_tokens=24, spill=SpillStore(tmp_path, max_tokens=10_000)
    )
    first.put(MODEL_NAME, VOCAB, prompt, _prefilled(prompt))
    filler = tuple(range(500, 524))
    # The second put busts the budget and demotes `prompt` into the spill.
    first.put(MODEL_NAME, VOCAB, filler, _prefilled(filler))

    second = IngestStateCache(
        max_tokens=1000, spill=SpillStore(tmp_path, max_tokens=10_000)
    )
    lookup = second.get(MODEL_NAME, VOCAB, prompt)
    assert lookup.outcome == "fork"
    assert lookup.matched == len(prompt)


def test_spill_fetch_probes_checkpoint_prefixes(tmp_path):
    spill = SpillStore(tmp_path, max_tokens=10_000)
    prompt = tuple(range(200, 264))  # 64 tokens
    spill.store(MODEL_NAME, VOCAB, prompt[:16], _prefilled(prompt[:16]))
    model, matched = spill.fetch(MODEL_NAME, VOCAB, prompt)
    assert model is not None
    assert matched == 16  # the doubling checkpoint, not a full-prompt hit


def test_corrupt_spill_entry_is_dropped_not_raised(tmp_path):
    spill = SpillStore(tmp_path, max_tokens=10_000)
    prompt = tuple(range(20))
    spill.store(MODEL_NAME, VOCAB, prompt, _prefilled(prompt))
    path = spill._path(MODEL_NAME, VOCAB, prompt)
    path.write_bytes(b"not a pickle")
    model, matched = spill.fetch(MODEL_NAME, VOCAB, prompt)
    assert model is None and matched == 0
    assert spill.stats["corrupt_dropped"] == 1
    assert not path.exists()


def test_spill_evicts_oldest_down_to_token_budget(tmp_path):
    spill = SpillStore(tmp_path, max_tokens=50)
    for start in (0, 1000, 2000, 3000):
        prompt = tuple(range(start, start + 20))
        spill.store(MODEL_NAME, VOCAB, prompt, _prefilled(prompt))
        time.sleep(0.01)  # distinct mtimes make LRU order deterministic
    stats = spill.stats
    assert stats["total_tokens"] <= 50
    assert stats["evictions"] == 2
    # The newest entry survived.
    newest = tuple(range(3000, 3020))
    model, matched = spill.fetch(MODEL_NAME, VOCAB, newest)
    assert model is not None and matched == len(newest)


# -- sharded engine: bit-identity ----------------------------------------------


@pytest.fixture(scope="module")
def sharded_engine():
    with ShardedEngine(num_shards=2, worker_threads=2) as engine:
        yield engine


@pytest.mark.parametrize("execution", ["batched", "continuous"])
def test_sharded_forecasts_bit_identical_to_in_process(
    sharded_engine, execution
):
    specs = [_spec(seed=seed, execution=execution) for seed in (7, 8, 9)]
    with ForecastEngine() as engine:
        baseline = [engine.forecast(spec) for spec in specs]
    for spec, expected in zip(specs, baseline):
        assert expected.ok
        # Cold pass, then warm (the worker's result cache must not change
        # a bit either).
        for _ in range(2):
            response = sharded_engine.forecast(spec)
            assert response.ok, response.error
            assert (
                response.output.values.tobytes()
                == expected.output.values.tobytes()
            )
            assert (
                response.output.samples.tobytes()
                == expected.output.samples.tobytes()
            )


def test_warm_repeat_hits_the_worker_result_cache(sharded_engine):
    spec = _spec(seed=77)
    first = sharded_engine.forecast(spec)
    second = sharded_engine.forecast(spec)
    assert first.ok and second.ok
    assert second.cache_hit


def test_metrics_snapshot_reports_per_shard_health(sharded_engine):
    sharded_engine.forecast(_spec(seed=78))
    snapshot = sharded_engine.metrics_snapshot()
    assert snapshot["shard_requests_total"]["value"] >= 1
    shards = snapshot["shards"]
    assert set(shards) == {"0", "1"}
    for entry in shards.values():
        assert entry["healthy"]
        assert isinstance(entry["worker_pid"], int)
    assert sum(entry["dispatched_total"] for entry in shards.values()) >= 1


def test_sharded_engine_validates_configuration():
    with pytest.raises(ConfigError):
        ShardedEngine(num_shards=0)
    with pytest.raises(ConfigError):
        ShardedEngine(num_shards=1, max_attempts=0)


def test_ledger_records_carry_shard_identity(tmp_path):
    ledger_path = tmp_path / "shard.jsonl"
    with ShardedEngine(
        num_shards=2, worker_threads=2, ledger=str(ledger_path)
    ) as engine:
        response = engine.forecast(_spec(seed=31))
        assert response.ok
    record = json.loads(ledger_path.read_text().splitlines()[0])
    assert record["shard"] in (0, 1)
    assert isinstance(record["worker_pid"], int)
    assert record["attempts"] == 1
    assert record["outcome"] == "ok"


# -- sharded engine: crash recovery --------------------------------------------


def _await_inflight(engine, timeout=5.0):
    """The shard currently serving a request (its worker mid-chaos-delay)."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        target = next(
            (shard for shard in engine._shards if shard.inflight > 0), None
        )
        if target is not None and target.process.is_alive():
            # Give the worker a beat to dequeue the task before the kill.
            time.sleep(0.2)
            return target
        time.sleep(0.01)
    raise AssertionError("no shard picked up the request in time")


def test_worker_death_mid_request_retries_on_another_shard():
    tracer = Tracer(SpanCollector())
    with ShardedEngine(
        num_shards=2,
        worker_threads=2,
        chaos_delay_seconds=0.6,
        tracer=tracer,
    ) as engine:
        future = engine.submit(_spec(seed=3))
        victim = _await_inflight(engine)
        victim.process.terminate()

        response = future.result(timeout=30)
        assert response.ok, response.error
        assert response.attempts == 2

        dispatches = [
            span
            for span in response.trace.walk()
            if span.name == "shard:dispatch"
        ]
        assert [span.attributes["attempt"] for span in dispatches] == [1, 2]
        assert dispatches[1].attributes["shard"] != victim.index

        snapshot = engine.metrics_snapshot()
        assert snapshot["shard_restarts"]["value"] == 1
        assert snapshot["shard_retries"]["value"] == 1
        assert snapshot["shards"][str(victim.index)]["restarts"] == 1

        # The restarted shard is healthy and serves again.
        again = engine.forecast(_spec(seed=4))
        assert again.ok


def test_exhausted_retries_surface_as_typed_shard_failure(tmp_path):
    ledger_path = tmp_path / "failures.jsonl"
    with ShardedEngine(
        num_shards=1,
        worker_threads=2,
        max_attempts=1,
        chaos_delay_seconds=0.6,
        ledger=str(ledger_path),
    ) as engine:
        future = engine.submit(_spec(seed=5))
        victim = _await_inflight(engine)
        victim.process.terminate()

        response = future.result(timeout=30)
        assert not response.ok
        assert response.error.startswith("ShardFailure")
        assert response.attempts == 1
        assert engine.metrics_snapshot()["shard_failures"]["value"] == 1
    record = json.loads(ledger_path.read_text().splitlines()[0])
    assert record["outcome"] == "failed"
    assert record["attempts"] == 1
    assert record["shard"] is None


# -- gateway over a sharded engine ---------------------------------------------


def test_gateway_over_sharded_engine_is_bit_identical(tmp_path):
    ledger_path = tmp_path / "gateway-sharded.jsonl"
    spec = _spec(seed=21)
    with ForecastEngine() as engine:
        direct = engine.forecast(ForecastRequest.from_spec(spec))
    assert direct.ok

    async def through_gateway():
        engine = ShardedEngine(
            num_shards=2, worker_threads=2, ledger=str(ledger_path)
        )
        try:
            async with ForecastGateway(engine) as gateway:
                handle = await gateway.submit(spec, tenant="t")
                return await gateway.result(handle)
        finally:
            engine.close()

    served = asyncio.run(through_gateway())
    assert served.ok
    assert served.values.tobytes() == direct.values.tobytes()
    assert (
        served.output.samples.tobytes() == direct.output.samples.tobytes()
    )
    record = json.loads(ledger_path.read_text().splitlines()[0])
    assert record["admission"] == "admitted"
    assert record["tenant"] == "t"
    assert record["shard"] in (0, 1)
    assert isinstance(record["worker_pid"], int)
    assert record["gateway_queue_wait_seconds"] >= 0

"""Failure-injection tests: the pipeline must survive pathological backends.

A production pipeline wraps a model it does not control.  These tests
register deliberately adversarial in-context models — degenerate
distributions, separator-flooding preferences, single-token collapse —
and assert the forecaster still honours its output contract (correct
shapes, finite values, in-range forecasts).
"""

import numpy as np
import pytest

from repro.core import ForecastSpec, MultiCastForecaster
from repro.data import synthetic_multivariate
from repro.exceptions import GenerationError
from repro.llm import (
    ModelSpec,
    TokenCostModel,
    UniformLM,
    register_model,
)
from repro.llm.interface import LanguageModel

HISTORY = synthetic_multivariate(n=80, num_dims=2, seed=9).values


class _SeparatorLover(LanguageModel):
    """Puts almost all mass on the last id (the separator in our vocabs)."""

    def reset(self, context):
        pass

    def advance(self, token):
        self._check_token(token)

    def next_distribution(self):
        probs = np.full(self.vocab_size, 0.01 / (self.vocab_size - 1))
        probs[-1] = 0.99
        return probs / probs.sum()


class _SingleTokenCollapse(LanguageModel):
    """Deterministically emits token 0 forever."""

    def reset(self, context):
        pass

    def advance(self, token):
        self._check_token(token)

    def next_distribution(self):
        probs = np.zeros(self.vocab_size)
        probs[0] = 1.0
        return probs


class _ZeroMassOnDigits(LanguageModel):
    """All probability on the separator; digits get exactly zero.

    Under the structured grammar the digit positions then have zero
    admissible mass — the sampler must fall back to uniform-over-allowed
    rather than crash.
    """

    def reset(self, context):
        pass

    def advance(self, token):
        self._check_token(token)

    def next_distribution(self):
        probs = np.zeros(self.vocab_size)
        probs[-1] = 1.0
        return probs


def _register(name, factory):
    register_model(
        ModelSpec(name=name, factory=factory, cost=TokenCostModel(0.1)),
        overwrite=True,
    )


def _forecast(model_name, structured=True, scheme="vc"):
    spec = ForecastSpec(
        series=HISTORY,
        horizon=6,
        scheme=scheme,
        num_samples=2,
        model=model_name,
        structured_constraint=structured,
        seed=0,
    )
    return MultiCastForecaster().forecast(spec)


class TestAdversarialBackends:
    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    def test_separator_flooding_with_grammar(self, scheme):
        _register("adversary-separator", _SeparatorLover)
        output = _forecast("adversary-separator", structured=True, scheme=scheme)
        assert output.values.shape == (6, 2)
        assert np.isfinite(output.values).all()

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    def test_separator_flooding_without_grammar(self, scheme):
        """The hard case: the stream is nearly all commas; lenient demux
        yields few/no rows and the horizon-fitter pads from the history."""
        _register("adversary-separator", _SeparatorLover)
        output = _forecast("adversary-separator", structured=False, scheme=scheme)
        assert output.values.shape == (6, 2)
        assert np.isfinite(output.values).all()
        # Padded forecasts stay inside the scaler's representable span.
        for k in range(2):
            lo, hi = HISTORY[:, k].min(), HISTORY[:, k].max()
            span = hi - lo
            assert output.values[:, k].min() >= lo - 0.2 * span - 1e-9
            assert output.values[:, k].max() <= hi + 0.2 * span + 1e-9

    def test_single_token_collapse(self):
        _register("adversary-collapse", _SingleTokenCollapse)
        output = _forecast("adversary-collapse")
        # All-zero digit groups decode to the scaler's lower bound: finite,
        # in-range, shaped correctly.
        assert np.isfinite(output.values).all()

    def test_zero_mass_on_required_positions(self):
        _register("adversary-zeromass", _ZeroMassOnDigits)
        output = _forecast("adversary-zeromass", structured=True)
        assert np.isfinite(output.values).all()

    def test_uniform_backend_all_schemes_and_sax(self):
        from repro.core import SaxConfig

        for scheme in ("di", "vi", "vc", "bi"):
            spec = ForecastSpec(
                series=HISTORY,
                horizon=5,
                scheme=scheme,
                num_samples=2,
                model="uniform-sim",
                seed=1,
            )
            output = MultiCastForecaster().forecast(spec)
            assert np.isfinite(output.values).all()
        spec = ForecastSpec(
            series=HISTORY,
            horizon=5,
            num_samples=2,
            model="uniform-sim",
            sax=SaxConfig(),
            seed=1,
        )
        output = MultiCastForecaster().forecast(spec)
        assert np.isfinite(output.values).all()


class TestGeneratorContracts:
    def test_truncated_generation_budget(self):
        """Even a 1-token generation budget must not break demux/padding."""
        # Monkey-level: horizon 1 with DI needs d*b+1 tokens; the pipeline
        # always requests the full budget, so emulate truncation by using
        # the separator-flooding model without grammar instead.
        _register("adversary-separator", _SeparatorLover)
        output = _forecast("adversary-separator", structured=False)
        assert output.values.shape == (6, 2)

    def test_uniform_model_rejects_bad_token_ids(self):
        model = UniformLM(vocab_size=5)
        with pytest.raises(GenerationError):
            model.advance(7)

"""Tests for the pluggable prompt-strategy layer (``repro.strategies``).

Two contracts carry the refactor:

* the ``"default"`` strategy is **bit-identical** to the pre-strategy
  pipeline — pinned below as digest regressions over every scheme ×
  codec × execution combination, so any drift in the moved code fails
  loudly, and
* every new strategy (``patch``, ``decompose``, ``auto``) is
  deterministic across execution modes ({batched, continuous, sharded})
  and ingest-cache temperature ({cold, warm}).
"""

import hashlib

import numpy as np
import pytest

from repro.core import (
    PROMPT_STRATEGIES,
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.exceptions import ConfigError
from repro.llm.state_cache import IngestStateCache
from repro.strategies import (
    AutoStrategy,
    DecomposeThenForecastStrategy,
    DigitStrategy,
    PatchAggregateStrategy,
    PromptStrategy,
    SaxStrategy,
    get_strategy,
    resolve_strategy,
    select_strategy,
)

_RNG = np.random.default_rng(42)
HISTORY = np.cumsum(_RNG.standard_normal((48, 2)), axis=0)
HORIZON = 7
SEED = 11
SAX = SaxConfig(segment_length=3, alphabet_size=5)

#: (scheme, sax?) -> (sha256(values+samples)[:16], prompt_tokens,
#: generated_tokens) captured on the pre-strategy pipeline.  The default
#: strategy must reproduce these bytes exactly.
_PINNED = {
    ("di", False): ("fe60123283ebbf1b", 336, 147),
    ("di", True): ("020efdfd4be81d83", 48, 27),
    ("vi", False): ("43958172081c4e66", 336, 147),
    ("vi", True): ("020efdfd4be81d83", 48, 27),
    ("vc", False): ("e68f78667638640d", 384, 168),
    ("vc", True): ("32d0aa97777fbe50", 64, 36),
}


def _digest(output) -> str:
    payload = output.values.tobytes() + output.samples.tobytes()
    return hashlib.sha256(payload).hexdigest()[:16]


def _forecast(strategy="default", execution="batched", state_cache=None,
              history=None, horizon=HORIZON, **config_kwargs):
    config = MultiCastConfig(
        num_samples=3, seed=SEED, strategy=strategy, **config_kwargs
    )
    forecaster = MultiCastForecaster(config, state_cache=state_cache)
    spec = ForecastSpec.from_config(
        config,
        series=HISTORY if history is None else history,
        horizon=horizon,
        execution=execution,
    )
    return forecaster.forecast(spec)


def _seasonal_history(n=96, d=2):
    t = np.arange(n, dtype=float)
    rng = np.random.default_rng(5)
    base = np.sin(2 * np.pi * t / 12.0)
    return np.stack(
        [base * (k + 1) + 0.05 * rng.standard_normal(n) for k in range(d)],
        axis=1,
    )


class TestDefaultBitIdentity:
    """The default strategy reproduces the pre-refactor pipeline exactly."""

    @pytest.mark.parametrize("scheme,use_sax", sorted(_PINNED))
    @pytest.mark.parametrize("execution", ["batched", "continuous"])
    def test_pinned_digest(self, scheme, use_sax, execution):
        expected_digest, prompt_tokens, generated_tokens = _PINNED[
            (scheme, use_sax)
        ]
        output = _forecast(
            scheme=scheme, sax=SAX if use_sax else None, execution=execution
        )
        assert _digest(output) == expected_digest
        assert output.prompt_tokens == prompt_tokens
        assert output.generated_tokens == generated_tokens

    @pytest.mark.parametrize("use_sax", [False, True])
    def test_explicit_name_matches_default(self, use_sax):
        sax = SAX if use_sax else None
        explicit = "sax" if use_sax else "digit"
        baseline = _forecast(strategy="default", sax=sax)
        named = _forecast(strategy=explicit, sax=sax)
        assert _digest(named) == _digest(baseline)

    def test_default_reports_resolved_strategy(self):
        assert _forecast(sax=None).metadata["strategy"] == "digit"
        assert _forecast(sax=SAX).metadata["strategy"] == "sax"


class TestStrategyDeterminism:
    """patch/decompose/auto: one answer across modes and cache states."""

    @pytest.mark.parametrize("strategy", ["patch", "decompose", "auto"])
    def test_modes_and_cache_states_bit_identical(self, strategy):
        history = _seasonal_history()
        baseline = _forecast(strategy=strategy, history=history)
        for execution in ("batched", "continuous"):
            cache = IngestStateCache()
            for _ in range(2):  # cold, then warm ingest cache
                output = _forecast(
                    strategy=strategy,
                    execution=execution,
                    state_cache=cache,
                    history=history,
                )
                assert np.array_equal(output.values, baseline.values)
                assert np.array_equal(output.samples, baseline.samples)

    @pytest.mark.parametrize("strategy", ["patch", "decompose"])
    def test_sharded_matches_in_process(self, strategy):
        from repro.serving import ForecastEngine
        from repro.sharding import ShardedEngine

        config = MultiCastConfig(
            num_samples=2, seed=3, strategy=strategy, model="uniform-sim"
        )
        spec = ForecastSpec.from_config(
            config, series=_seasonal_history(n=48), horizon=4
        )
        with ForecastEngine() as engine:
            expected = engine.forecast(spec)
        assert expected.ok
        with ShardedEngine(num_shards=2, worker_threads=2) as sharded:
            for _ in range(2):  # cold then warm worker caches
                response = sharded.forecast(spec)
                assert response.ok, response.error
                assert np.array_equal(
                    response.output.values, expected.output.values
                )
                assert np.array_equal(
                    response.output.samples, expected.output.samples
                )

    def test_warm_decompose_subrequests_hit_ingest_cache(self):
        cache = IngestStateCache()
        history = _seasonal_history()
        _forecast(strategy="decompose", state_cache=cache, history=history)
        warm = _forecast(strategy="decompose", state_cache=cache,
                         history=history)
        components = warm.metadata["components"]
        ingests = [
            info["ingest"] for info in components.values()
            if not info["skipped"]
        ]
        assert ingests and all(i in ("fork", "extend") for i in ingests)


class TestPatchStrategy:
    def test_cuts_prompt_tokens_at_least_3x(self):
        history = _seasonal_history()
        digit = _forecast(strategy="digit", history=history)
        patch = _forecast(strategy="patch", history=history, patch_length=6)
        assert digit.prompt_tokens >= 3 * patch.prompt_tokens

    def test_metadata_and_shapes(self):
        output = _forecast(strategy="patch", patch_length=5)
        assert output.metadata["strategy"] == "patch"
        assert output.metadata["patch_length"] == 5
        assert output.metadata["history_patches"] == 10  # ceil(48 / 5)
        assert output.metadata["horizon_patches"] == 2  # ceil(7 / 5)
        assert output.values.shape == (HORIZON, 2)
        # each patch forecasts one value, repeated across its patch window
        head = output.values[:5]
        assert np.array_equal(head, np.repeat(head[:1], 5, axis=0))


class TestDecomposeStrategy:
    def test_component_bookkeeping(self):
        output = _forecast(strategy="decompose", history=_seasonal_history())
        assert output.metadata["strategy"] == "decompose"
        assert output.metadata["method"] == "multicast-decompose"
        components = output.metadata["components"]
        assert set(components) == {"trend", "seasonal", "residual"}
        active = [c for c in components.values() if not c["skipped"]]
        assert active
        assert output.prompt_tokens == sum(
            c["prompt_tokens"] for c in active
        )
        assert output.generated_tokens == sum(
            c["generated_tokens"] for c in active
        )
        assert any(p is not None and p >= 2 for p in output.metadata["periods"])

    def test_constant_history_skips_zero_components(self):
        history = np.full((32, 1), 7.5)
        output = _forecast(strategy="decompose", history=history)
        components = output.metadata["components"]
        # a constant decomposes into trend only; the all-zero seasonal and
        # residual components never reach the engine.
        assert not components["trend"]["skipped"]
        assert components["seasonal"]["skipped"]
        assert components["residual"]["skipped"]

    def test_timing_invariant_holds(self):
        output = _forecast(strategy="decompose", history=_seasonal_history())
        assert output.wall_seconds == pytest.approx(
            sum(output.timings.values())
        )
        assert set(output.timings) == {"decompose", "generate", "aggregate"}


class TestAutoStrategy:
    def test_long_history_selects_patch(self):
        history = np.cumsum(
            np.random.default_rng(0).standard_normal((600, 4)), axis=0
        )
        config = MultiCastConfig(strategy="auto", max_context_tokens=512)
        assert select_strategy(history, config) == "patch"

    def test_seasonal_history_selects_decompose(self):
        config = MultiCastConfig(strategy="auto")
        assert select_strategy(_seasonal_history(), config) == "decompose"

    def test_short_aseasonal_history_selects_default(self):
        history = np.cumsum(
            np.random.default_rng(1).standard_normal((24, 1)), axis=0
        )
        config = MultiCastConfig(strategy="auto")
        assert select_strategy(history, config) == "default"

    def test_forecast_records_selection(self):
        output = _forecast(strategy="auto", history=_seasonal_history())
        assert output.metadata["auto_selected"] == "decompose"
        assert output.metadata["strategy"] == "auto:decompose"


class TestRegistry:
    def test_resolve_default_picks_codec_path(self):
        assert isinstance(
            resolve_strategy("default", MultiCastConfig()), DigitStrategy
        )
        assert isinstance(
            resolve_strategy("default", MultiCastConfig(sax=SAX)), SaxStrategy
        )

    def test_get_strategy_covers_every_name(self):
        classes = {
            "digit": DigitStrategy,
            "sax": SaxStrategy,
            "patch": PatchAggregateStrategy,
            "decompose": DecomposeThenForecastStrategy,
            "auto": AutoStrategy,
        }
        for name, cls in classes.items():
            strategy = get_strategy(name)
            assert isinstance(strategy, cls)
            assert isinstance(strategy, PromptStrategy)
            assert strategy.name == name

    def test_unknown_name_raises_config_error(self):
        with pytest.raises(ConfigError, match="strategy"):
            get_strategy("bogus")
        with pytest.raises(ConfigError, match="strategy"):
            MultiCastConfig(strategy="bogus")

    def test_prompt_strategies_constant_is_exhaustive(self):
        assert PROMPT_STRATEGIES == (
            "default", "digit", "sax", "patch", "decompose", "auto"
        )

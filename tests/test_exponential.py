"""Tests for the exponential-smoothing baselines and period detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
    Theta,
    estimate_period,
)
from repro.exceptions import FittingError
from repro.metrics import rmse


def _seasonal(n=120, period=12, trend=0.05, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(float(n))
    return 10.0 + trend * t + 2.0 * np.sin(2 * np.pi * t / period) + noise * rng.normal(size=n)


class TestSes:
    def test_constant_series_forecasts_the_constant(self):
        model = SimpleExponentialSmoothing().fit(np.full(20, 7.0))
        assert np.allclose(model.forecast(5), 7.0)

    def test_forecast_is_flat(self):
        model = SimpleExponentialSmoothing().fit(np.sin(np.arange(30.0)))
        forecast = model.forecast(10)
        assert np.allclose(forecast, forecast[0])

    def test_alpha_near_one_tracks_last_value(self):
        x = np.array([1.0, 2.0, 3.0, 100.0])
        model = SimpleExponentialSmoothing(alpha=0.999).fit(x)
        assert model.forecast(1)[0] == pytest.approx(100.0, abs=0.5)

    def test_fitted_alpha_in_bounds(self):
        rng = np.random.default_rng(0)
        model = SimpleExponentialSmoothing().fit(rng.normal(size=50))
        assert 0.0 < model.fitted_alpha <= 1.0

    def test_fixed_alpha_respected(self):
        model = SimpleExponentialSmoothing(alpha=0.42).fit(np.arange(10.0))
        assert model.fitted_alpha == 0.42

    def test_validation(self):
        with pytest.raises(FittingError):
            SimpleExponentialSmoothing(alpha=0.0)
        with pytest.raises(FittingError):
            SimpleExponentialSmoothing().fit(np.ones(2))
        with pytest.raises(FittingError):
            SimpleExponentialSmoothing().forecast(3)
        model = SimpleExponentialSmoothing().fit(np.arange(10.0))
        with pytest.raises(FittingError):
            model.forecast(0)


class TestHoltLinear:
    def test_extrapolates_a_clean_trend(self):
        x = 3.0 + 2.0 * np.arange(40.0)
        forecast = HoltLinear().fit(x).forecast(5)
        expected = 3.0 + 2.0 * np.arange(40.0, 45.0)
        assert np.allclose(forecast, expected, atol=0.3)

    def test_damped_forecast_flattens(self):
        x = 3.0 + 2.0 * np.arange(40.0)
        undamped = HoltLinear(damping=1.0).fit(x).forecast(50)
        damped = HoltLinear(damping=0.8).fit(x).forecast(50)
        assert damped[-1] < undamped[-1]
        # A damped trend's increments shrink geometrically.
        increments = np.diff(damped)
        assert increments[-1] < increments[0]

    def test_params_recorded(self):
        model = HoltLinear().fit(np.arange(30.0))
        assert set(model.params) == {"alpha", "beta"}

    def test_validation(self):
        with pytest.raises(FittingError):
            HoltLinear(damping=0.0)
        with pytest.raises(FittingError):
            HoltLinear().fit(np.ones(3))
        with pytest.raises(FittingError):
            HoltLinear().forecast(1)


class TestHoltWinters:
    def test_nails_a_clean_seasonal_series(self):
        x = _seasonal(noise=0.0)
        train, test = x[:108], x[108:]
        forecast = HoltWinters(period=12).fit(train).forecast(12)
        assert rmse(test, forecast) < 0.1

    def test_beats_theta_on_seasonal_data(self):
        x = _seasonal(noise=0.1, seed=1)
        train, test = x[:108], x[108:]
        hw = rmse(test, HoltWinters(period=12).fit(train).forecast(12))
        theta = rmse(test, Theta().fit(train).forecast(12))
        assert hw < theta

    def test_seasonal_pattern_repeats_with_period(self):
        x = _seasonal(trend=0.0, noise=0.0)
        forecast = HoltWinters(period=12).fit(x).forecast(24)
        assert np.allclose(forecast[:12], forecast[12:], atol=0.05)

    def test_needs_two_full_seasons(self):
        with pytest.raises(FittingError):
            HoltWinters(period=12).fit(np.arange(20.0))

    def test_validation(self):
        with pytest.raises(FittingError):
            HoltWinters(period=1)
        with pytest.raises(FittingError):
            HoltWinters(period=4).forecast(2)


class TestTheta:
    def test_continues_a_linear_trend_at_half_slope(self):
        # The canonical theta method dampens the drift to ~half the fitted
        # slope (SES of the theta=2 line is flat; averaging with the drift
        # line halves the increment) — the behaviour that won M3.
        x = 5.0 + 1.5 * np.arange(60.0)
        forecast = Theta().fit(x).forecast(10)
        assert forecast[0] == pytest.approx(x[-1] + 0.75, abs=0.5)
        assert np.allclose(np.diff(forecast), 0.75, atol=0.05)

    def test_flat_series(self):
        forecast = Theta().fit(np.full(30, 4.0)).forecast(5)
        assert np.allclose(forecast, 4.0, atol=1e-6)

    def test_trend_direction_preserved(self):
        down = Theta().fit(100.0 - 2.0 * np.arange(50.0)).forecast(10)
        assert (np.diff(down) < 0).all()

    def test_validation(self):
        with pytest.raises(FittingError):
            Theta().fit(np.ones(3))
        with pytest.raises(FittingError):
            Theta().forecast(2)


class TestEstimatePeriod:
    def test_finds_a_clean_period(self):
        assert estimate_period(_seasonal(noise=0.0)) == 12

    def test_finds_period_under_noise(self):
        assert estimate_period(_seasonal(noise=0.3, seed=2)) in (11, 12, 13)

    def test_trend_does_not_fool_it(self):
        x = _seasonal(trend=0.5, noise=0.05, seed=3)
        assert estimate_period(x) in (11, 12, 13)

    def test_white_noise_has_no_period(self):
        rng = np.random.default_rng(4)
        assert estimate_period(rng.normal(size=200)) == 1

    def test_constant_series(self):
        assert estimate_period(np.full(50, 3.0)) == 1

    def test_too_short_rejected(self):
        with pytest.raises(FittingError):
            estimate_period(np.ones(4))


@given(
    st.floats(min_value=-5.0, max_value=5.0),
    st.floats(min_value=-1.0, max_value=1.0),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_holt_recovers_any_linear_trend_property(intercept, slope, seed):
    rng = np.random.default_rng(seed)
    x = intercept + slope * np.arange(50.0) + 0.01 * rng.normal(size=50)
    forecast = HoltLinear().fit(x).forecast(3)
    expected = intercept + slope * np.arange(50.0, 53.0)
    tolerance = 0.2 + 0.1 * abs(slope)
    assert np.allclose(forecast, expected, atol=tolerance)

"""Tests for the LLMTime baseline (zero-shot univariate LLM forecasting)."""

import numpy as np
import pytest

from repro.baselines import LLMTime, LLMTimeConfig
from repro.baselines.llmtime import _fit_horizon, _truncate_to_group_boundary
from repro.exceptions import ConfigError, DataError
from repro.metrics import rmse


def _sine(n=120, period=16.0):
    return np.sin(2 * np.pi * np.arange(n) / period)


class TestConfig:
    def test_paper_defaults(self):
        config = LLMTimeConfig()
        assert config.num_samples == 5
        assert config.model == "llama2-7b-sim"
        assert config.aggregation == "median"

    def test_validation(self):
        with pytest.raises(ConfigError):
            LLMTimeConfig(num_digits=0)
        with pytest.raises(ConfigError):
            LLMTimeConfig(num_samples=0)
        with pytest.raises(ConfigError):
            LLMTimeConfig(aggregation="mode")
        with pytest.raises(ConfigError):
            LLMTimeConfig(max_context_tokens=4)


class TestUnivariate:
    def test_output_shapes_and_accounting(self):
        model = LLMTime(num_samples=3, seed=0)
        output = model.forecast_univariate(_sine(), horizon=10)
        assert output.values.shape == (10, 1)
        assert output.samples.shape == (3, 10, 1)
        assert output.prompt_tokens > 0
        # 3 samples x 10 steps x (3 digits + separator) tokens.
        assert output.generated_tokens == 3 * 10 * 4
        assert output.simulated_seconds > 0
        assert output.model_name == "llama2-7b-sim"

    def test_forecast_tracks_a_periodic_series(self):
        series = _sine(160)
        train, test = series[:144], series[144:]
        output = LLMTime(num_samples=5, seed=1).forecast_univariate(
            train, horizon=16
        )
        # The in-context model should do far better than predicting the mean.
        assert rmse(test, output.values[:, 0]) < rmse(test, np.zeros(16))

    def test_forecast_stays_in_scaled_range(self):
        series = 50.0 + 5.0 * _sine(100)
        output = LLMTime(num_samples=2, seed=2).forecast_univariate(
            series, horizon=8
        )
        # FixedDigitScaler bounds any decodable output by the headroom span.
        assert output.values.min() > 30.0
        assert output.values.max() < 70.0

    def test_reproducible_for_fixed_seed(self):
        series = _sine(80)
        a = LLMTime(seed=7).forecast_univariate(series, 5)
        b = LLMTime(seed=7).forecast_univariate(series, 5)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_usually_differ(self):
        series = _sine(80) + 0.3 * np.random.default_rng(0).normal(size=80)
        a = LLMTime(seed=1, num_samples=2).forecast_univariate(series, 8)
        b = LLMTime(seed=2, num_samples=2).forecast_univariate(series, 8)
        assert not np.allclose(a.values, b.values)

    def test_2d_history_rejected(self):
        with pytest.raises(DataError):
            LLMTime().forecast_univariate(np.zeros((10, 2)), 3)

    def test_short_history_rejected(self):
        with pytest.raises(DataError):
            LLMTime().forecast_univariate(np.ones(3), 2)

    def test_bad_horizon_rejected(self):
        with pytest.raises(DataError):
            LLMTime().forecast_univariate(_sine(), 0)


class TestMultivariate:
    def test_dimensions_forecast_independently_and_stacked(self):
        history = np.stack([_sine(100), 10.0 + _sine(100, period=8.0)], axis=1)
        output = LLMTime(num_samples=2, seed=3).forecast(history, 6)
        assert output.values.shape == (6, 2)
        assert output.samples.shape == (2, 6, 2)
        assert output.metadata["per_dimension"] is True

    def test_times_and_tokens_sum_over_dimensions(self):
        history = np.stack([_sine(100), _sine(100)], axis=1)
        multi = LLMTime(num_samples=2, seed=4).forecast(history, 5)
        uni = LLMTime(num_samples=2, seed=4).forecast_univariate(
            history[:, 0], 5, seed=4
        )
        assert multi.prompt_tokens == pytest.approx(2 * uni.prompt_tokens)
        assert multi.simulated_seconds == pytest.approx(2 * uni.simulated_seconds)

    def test_univariate_input_promoted(self):
        output = LLMTime(num_samples=2).forecast(_sine(60), 4)
        assert output.values.shape == (4, 1)


class TestContextTruncation:
    def test_long_history_is_truncated_to_budget(self):
        series = _sine(3000)
        output = LLMTime(
            num_samples=1, max_context_tokens=200, seed=5
        ).forecast_univariate(series, 4)
        assert output.prompt_tokens <= 200

    def test_truncation_respects_group_boundary(self):
        # ids: 0 0 1 sep 0 0 2 sep 0 0 3 (separator id = 10)
        ids = [0, 0, 1, 10, 0, 0, 2, 10, 0, 0, 3]
        truncated = _truncate_to_group_boundary(ids, limit=6, separator_id=10)
        assert truncated == [0, 0, 3]

    def test_no_truncation_when_under_limit(self):
        ids = [1, 2, 3]
        assert _truncate_to_group_boundary(ids, 10, separator_id=10) == ids

    def test_truncation_without_separator_in_tail(self):
        ids = [0] * 20
        assert _truncate_to_group_boundary(ids, 5, separator_id=10) == [0] * 5


class TestFitHorizon:
    def test_truncates_long_output(self):
        assert _fit_horizon(np.arange(10.0), 4, 0.0).tolist() == [0, 1, 2, 3]

    def test_pads_short_output_with_last_value(self):
        assert _fit_horizon(np.array([5.0]), 3, 0.0).tolist() == [5.0, 5.0, 5.0]

    def test_empty_output_uses_fallback(self):
        assert _fit_horizon(np.array([]), 2, 9.0).tolist() == [9.0, 9.0]

"""Unit and property tests for the SAX substrate (PAA, breakpoints, encoder)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.exceptions import ConfigError, DataError, EncodingError
from repro.sax import (
    SaxAlphabet,
    SaxEncoder,
    gaussian_breakpoints,
    interval_expected_values,
    interval_midpoints,
    inverse_normal_cdf,
    inverse_paa,
    paa,
)
from repro.sax.paa import num_segments


class TestPaa:
    def test_exact_division(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        assert paa(x, 2).tolist() == [2.0, 6.0]

    def test_trailing_partial_segment(self):
        x = np.array([1.0, 3.0, 10.0])
        assert paa(x, 2).tolist() == [2.0, 10.0]

    def test_segment_length_one_is_identity(self):
        x = np.array([4.0, 2.0, 9.0])
        assert paa(x, 1).tolist() == x.tolist()

    def test_segment_longer_than_series_gives_global_mean(self):
        x = np.array([2.0, 4.0])
        assert paa(x, 10).tolist() == [3.0]

    def test_inverse_paa_repeats_and_truncates(self):
        recon = inverse_paa(np.array([1.0, 2.0]), 3, 5)
        assert recon.tolist() == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_round_trip_preserves_segment_means(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=30)
        recon = inverse_paa(paa(x, 5), 5, 30)
        assert np.allclose(paa(recon, 5), paa(x, 5))

    def test_inverse_with_wrong_count_raises(self):
        with pytest.raises(DataError):
            inverse_paa(np.array([1.0]), 3, 10)

    def test_2d_input_raises(self):
        with pytest.raises(DataError):
            paa(np.zeros((3, 2)), 2)

    def test_bad_segment_length_raises(self):
        with pytest.raises(DataError):
            paa(np.zeros(4), 0)

    def test_num_segments_ceiling(self):
        assert num_segments(10, 3) == 4
        assert num_segments(9, 3) == 3


class TestInverseNormalCdf:
    def test_median(self):
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_matches_scipy_across_range(self):
        for p in np.linspace(0.001, 0.999, 199):
            assert inverse_normal_cdf(float(p)) == pytest.approx(
                stats.norm.ppf(p), abs=1e-10
            )

    def test_extreme_tails_match_scipy(self):
        for p in (1e-12, 1e-8, 1 - 1e-8):
            assert inverse_normal_cdf(p) == pytest.approx(
                stats.norm.ppf(p), rel=1e-9
            )

    def test_symmetry(self):
        assert inverse_normal_cdf(0.2) == pytest.approx(-inverse_normal_cdf(0.8))

    def test_domain_enforced(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(DataError):
                inverse_normal_cdf(p)


class TestBreakpoints:
    def test_count(self):
        assert gaussian_breakpoints(5).size == 4

    def test_classic_sax_table_for_alphabet_4(self):
        # Lin & Keogh's published table: (-0.67, 0, 0.67).
        bps = gaussian_breakpoints(4)
        assert bps == pytest.approx([-0.6745, 0.0, 0.6745], abs=1e-4)

    def test_equiprobability(self):
        bps = gaussian_breakpoints(7)
        probs = np.diff(np.concatenate(([0.0], stats.norm.cdf(bps), [1.0])))
        assert np.allclose(probs, 1.0 / 7.0, atol=1e-12)

    def test_monotone_increasing(self):
        bps = gaussian_breakpoints(20)
        assert (np.diff(bps) > 0).all()

    def test_midpoints_lie_between_breakpoints(self):
        a = 6
        bps = gaussian_breakpoints(a)
        mids = interval_midpoints(a)
        edges = np.concatenate(([-np.inf], bps, [np.inf]))
        for i in range(a):
            assert edges[i] < mids[i] <= edges[i + 1]

    def test_expected_values_are_interval_means(self):
        a = 5
        levels = interval_expected_values(a)
        # Monte-Carlo check of the truncated-normal conditional mean.
        rng = np.random.default_rng(1)
        z = rng.normal(size=400_000)
        idx = np.searchsorted(gaussian_breakpoints(a), z)
        for i in range(a):
            assert levels[i] == pytest.approx(z[idx == i].mean(), abs=0.01)

    def test_alphabet_too_small_raises(self):
        with pytest.raises(DataError):
            gaussian_breakpoints(1)


class TestSaxAlphabet:
    def test_alphabetical_symbols(self):
        assert SaxAlphabet.alphabetical(5).symbols == ("a", "b", "c", "d", "e")

    def test_digital_symbols(self):
        assert SaxAlphabet.digital(5).symbols == ("0", "1", "2", "3", "4")

    def test_digital_capped_at_ten(self):
        """The reason Table IX has N/A for digital SAX at alphabet size 20."""
        SaxAlphabet.digital(10)
        with pytest.raises(ConfigError):
            SaxAlphabet.digital(20)

    def test_alphabetical_capped_at_26(self):
        with pytest.raises(ConfigError):
            SaxAlphabet.alphabetical(27)

    def test_of_kind_dispatch(self):
        assert SaxAlphabet.of_kind("digital", 5) == SaxAlphabet.digital(5)
        assert SaxAlphabet.of_kind("alphabetical", 5) == SaxAlphabet.alphabetical(5)
        with pytest.raises(ConfigError):
            SaxAlphabet.of_kind("hex", 5)

    def test_index_of_unknown_symbol_raises(self):
        with pytest.raises(EncodingError):
            SaxAlphabet.alphabetical(3).index_of("z")


class TestSaxEncoder:
    def _encoder(self, **kwargs):
        defaults = dict(segment_length=3, alphabet=SaxAlphabet.alphabetical(5))
        defaults.update(kwargs)
        return SaxEncoder(**defaults)

    def test_word_length_is_segment_count(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=31)
        encoder = self._encoder().fit(x)
        assert len(encoder.encode(x)) == encoder.segments_for(31) == 11

    def test_symbols_come_from_alphabet(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=60)
        encoder = self._encoder().fit(x)
        assert set(encoder.encode(x)) <= set("abcde")

    def test_roughly_equiprobable_on_gaussian_data(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=6000)
        encoder = self._encoder(segment_length=1).fit(x)
        word = encoder.encode(x)
        counts = np.array([word.count(s) for s in "abcde"]) / len(word)
        assert np.allclose(counts, 0.2, atol=0.03)

    def test_monotone_series_maps_to_sorted_word(self):
        x = np.linspace(-3.0, 3.0, 30)
        encoder = self._encoder(segment_length=1).fit(x)
        word = encoder.encode(x)
        assert word == sorted(word)

    def test_decode_length_and_units(self):
        x = 100.0 + 10.0 * np.sin(np.linspace(0, 6, 45))
        encoder = self._encoder().fit(x)
        recon = encoder.decode(encoder.encode(x), n=45)
        assert recon.shape == (45,)
        # Reconstruction stays in the neighbourhood of the original units.
        assert 60.0 < recon.mean() < 140.0

    def test_reconstruction_error_shrinks_with_alphabet(self):
        rng = np.random.default_rng(5)
        x = np.sin(np.linspace(0, 20, 200)) + 0.05 * rng.normal(size=200)

        def error(alphabet_size):
            encoder = SaxEncoder(1, SaxAlphabet.alphabetical(alphabet_size)).fit(x)
            recon = encoder.decode(encoder.encode(x), n=200)
            return np.sqrt(np.mean((recon - x) ** 2))

        assert error(20) < error(5) < error(2)

    def test_expected_reconstruction_mode(self):
        x = np.sin(np.linspace(0, 20, 100))
        enc_mid = self._encoder(reconstruction="midpoint").fit(x)
        enc_exp = self._encoder(reconstruction="expected").fit(x)
        recon_mid = enc_mid.decode(enc_mid.encode(x), n=100)
        recon_exp = enc_exp.decode(enc_exp.encode(x), n=100)
        assert not np.allclose(recon_mid, recon_exp)

    def test_unfitted_use_raises(self):
        with pytest.raises(EncodingError):
            self._encoder().encode(np.zeros(10))

    def test_invalid_reconstruction_mode_raises(self):
        with pytest.raises(ConfigError):
            self._encoder(reconstruction="nearest")

    def test_invalid_segment_length_raises(self):
        with pytest.raises(ConfigError):
            self._encoder(segment_length=0)

    def test_decode_rejects_unknown_symbols(self):
        encoder = self._encoder().fit(np.arange(10.0))
        with pytest.raises(EncodingError):
            encoder.decode(["z"], n=3)


@given(
    st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        min_size=4,
        max_size=80,
    ),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=60)
def test_sax_round_trip_shape_property(xs, segment_length, alphabet_size):
    x = np.asarray(xs)
    encoder = SaxEncoder(segment_length, SaxAlphabet.alphabetical(alphabet_size))
    encoder.fit(x)
    word = encoder.encode(x)
    assert len(word) == encoder.segments_for(x.size)
    recon = encoder.decode(word, n=x.size)
    assert recon.shape == x.shape
    assert np.isfinite(recon).all()


@given(st.integers(min_value=2, max_value=26))
def test_breakpoints_symmetry_property(alphabet_size):
    bps = gaussian_breakpoints(alphabet_size)
    assert np.allclose(bps, -bps[::-1], atol=1e-9)


@given(
    st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
)
def test_inverse_normal_cdf_inverts_cdf_property(p):
    x = inverse_normal_cdf(p)
    assert 0.5 * math.erfc(-x / math.sqrt(2)) == pytest.approx(p, abs=1e-9)


class TestPaaEdgeCases:
    """Regression pins for the non-multiple-length / overflow bug sweep."""

    def test_weights_cover_series_exactly(self):
        from repro.sax import paa_weights

        for n in (1, 5, 6, 7, 12, 13, 100):
            for w in (1, 2, 3, 5, 8, 200):
                weights = paa_weights(n, w)
                assert weights.sum() == n  # never truncated, never padded
                assert weights.size == num_segments(n, w)
                assert (weights[:-1] == w).all()
                assert 1 <= weights[-1] <= w

    def test_last_frame_mean_uses_exact_weighting(self):
        from repro.sax import paa_weights

        # 7 values, window 3: the last segment holds exactly one value;
        # zero-padding would bias it toward 0, truncation would drop it.
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 100.0])
        coefficients = paa(x, 3)
        assert coefficients[-1] == 100.0
        weights = paa_weights(x.size, 3)
        starts = np.concatenate([[0], np.cumsum(weights)[:-1]])
        manual = np.array([
            x[s : s + w].sum() / w for s, w in zip(starts, weights)
        ])
        np.testing.assert_array_equal(coefficients, manual)

    def test_constant_series_is_exactly_preserved_at_any_length(self):
        for n in (5, 7, 10, 11):
            np.testing.assert_array_equal(paa(np.full(n, 5.5), 4), 5.5)

    def test_extreme_magnitude_windows_do_not_overflow(self):
        # Regression: the plain window sum hits inf at ~1.5e308 x 3; the
        # mean must still come out finite (it is <= max|window|).
        np.testing.assert_array_equal(paa(np.full(7, 1.5e308), 3), 1.5e308)
        mixed = np.array([1.7e308, 1.7e308, -1.7e308, 1.0])
        coefficients = paa(mixed, 3)
        assert np.isfinite(coefficients).all()
        assert np.isclose(coefficients[0], 1.7e308 / 3, rtol=1e-12)
        assert coefficients[1] == 1.0

    def test_overflow_path_emits_no_warnings(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            paa(np.full(9, 1.7e308), 4)
            paa(np.array([1.7e308, -1.7e308, 1.7e308]), 3)

    def test_tame_path_bitwise_unchanged(self):
        # The overflow fallback must not perturb ordinary inputs: the
        # coefficient is still the plain numpy window mean, bit for bit.
        rng = np.random.default_rng(7)
        x = rng.standard_normal(23) * 1e6
        coefficients = paa(x, 5)
        expected = np.array(
            [x[i : i + 5].mean() for i in range(0, 23, 5)]
        )
        np.testing.assert_array_equal(coefficients, expected)

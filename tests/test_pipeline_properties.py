"""Property tests on the end-to-end MultiCast pipeline.

The pipeline's per-dimension affine rescaling makes it *equivariant* under
affine transforms of the input: scaling or shifting the history produces
the identically transformed forecast (the integer codes, token streams,
and RNG draws are bit-identical).  These are strong whole-pipeline
invariants that catch subtle plumbing bugs anywhere in
scale → mux → generate → demux → descale.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ForecastSpec, MultiCastForecaster, SaxConfig
from repro.data import synthetic_multivariate

_HISTORY = synthetic_multivariate(n=90, num_dims=2, seed=5).values


def _forecast(history, scheme="di", sax=None, seed=0):
    spec = ForecastSpec(
        series=history,
        horizon=7,
        scheme=scheme,
        num_samples=2,
        sax=sax,
        seed=seed,
    )
    return MultiCastForecaster().forecast(spec)


class TestAffineEquivariance:
    @pytest.mark.parametrize("scheme", ["di", "vi", "vc", "bi"])
    def test_shift_equivariance(self, scheme):
        base = _forecast(_HISTORY, scheme)
        shifted = _forecast(_HISTORY + 100.0, scheme)
        assert np.allclose(shifted.values, base.values + 100.0, atol=1e-6)

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    def test_scale_equivariance(self, scheme):
        base = _forecast(_HISTORY, scheme)
        scaled = _forecast(_HISTORY * 7.0, scheme)
        assert np.allclose(scaled.values, base.values * 7.0, rtol=1e-6, atol=1e-6)

    def test_negation_is_not_identity(self):
        """Sanity check that equivariance tests aren't vacuous: negating the
        input changes the codes' order, so forecasts genuinely differ."""
        base = _forecast(_HISTORY)
        negated = _forecast(-_HISTORY)
        assert not np.allclose(negated.values, base.values)

    def test_sax_shift_equivariance(self):
        base = _forecast(_HISTORY, sax=SaxConfig())
        shifted = _forecast(_HISTORY + 42.0, sax=SaxConfig())
        assert np.allclose(shifted.values, base.values + 42.0, atol=1e-6)

    def test_token_accounting_is_scale_invariant(self):
        base = _forecast(_HISTORY)
        scaled = _forecast(_HISTORY * 1000.0)
        assert base.prompt_tokens == scaled.prompt_tokens
        assert base.generated_tokens == scaled.generated_tokens


class TestDimensionPermutation:
    def test_vc_forecast_permutes_with_dimensions(self):
        """VC treats dimensions symmetrically up to stream order, so
        swapping input columns swaps output columns (the generated stream
        differs, so allow the samples to differ — but shapes and scale
        handling must track the permutation exactly for each sample)."""
        base = _forecast(_HISTORY, scheme="vc")
        swapped = _forecast(_HISTORY[:, ::-1], scheme="vc")
        # Scale bookkeeping must follow the permutation: each dimension's
        # forecast stays inside its own (headroomed) historical span.
        for k in range(2):
            source = _HISTORY[:, 1 - k]
            span = source.max() - source.min()
            assert swapped.values[:, k].min() >= source.min() - 0.2 * span - 1e-9
            assert swapped.values[:, k].max() <= source.max() + 0.2 * span + 1e-9


@given(
    st.floats(min_value=0.01, max_value=1000.0),
    st.floats(min_value=-1e4, max_value=1e4),
)
@settings(max_examples=10, deadline=None)
def test_affine_equivariance_property(scale, shift):
    base = _forecast(_HISTORY)
    transformed = _forecast(_HISTORY * scale + shift)
    expected = base.values * scale + shift
    tolerance = 1e-6 * max(1.0, abs(scale) * 10.0, abs(shift))
    assert np.allclose(transformed.values, expected, atol=tolerance)

"""Tests for repro.observability: spans, tracer, collector, ledger.

Covers the PR's acceptance criteria directly:

* tracing disabled → forecaster/engine outputs bit-identical to untraced runs;
* the ``forecast`` root span's duration equals ``wall_seconds`` exactly, and
  per-stage span durations reproduce the ``timings`` dict;
* ``wall_seconds == sum(timings)`` holds under tracing (regression for the
  StageClock/span unification);
* a batch run writes one ledger record per request (cache hits and failures
  included) whose summary matches the engine's MetricsRegistry snapshot.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.core.output import ForecastOutput
from repro.data import synthetic_multivariate
from repro.exceptions import ConfigError, DataError, GenerationError
from repro.llm import ModelSpec, TokenCostModel, register_model
from repro.llm.ppm import PPMLanguageModel
from repro.observability import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    RunLedger,
    Span,
    SpanCollector,
    Tracer,
    read_ledger,
    render_span_tree,
    stage_timings,
    summarize_ledger,
)
from repro.serving import ForecastEngine, ForecastRequest, forecast_digest

HISTORY = synthetic_multivariate(n=80, num_dims=2, seed=3).values
CONFIG = MultiCastConfig(num_samples=2, seed=0)


def _spec(config, history, horizon):
    # The per-draw span assertions below describe the sequential runner;
    # batched execution has its own span shape (see test_batched_decoding).
    return ForecastSpec.from_config(
        config, series=history, horizon=horizon, execution="sequential"
    )


class _FlakyPPM(PPMLanguageModel):
    """Fails the first ``fail_first`` reset() calls (shared counter), then works."""

    failures = {"remaining": 0}
    lock = threading.Lock()

    def reset(self, context):
        with self.lock:
            if self.failures["remaining"] > 0:
                self.failures["remaining"] -= 1
                raise GenerationError("transient upstream failure")
        super().reset(context)


class TestSpan:
    def test_duration_and_idempotent_finish(self):
        span = Span("work")
        span.finish()
        first = span.end_time
        span.finish()
        assert span.end_time == first
        assert span.finished
        assert span.duration >= 0.0

    def test_finish_at_overrides_even_after_finish(self):
        span = Span("work")
        span.finish()
        span.finish(at=span.start_time + 2.5)
        assert span.duration == pytest.approx(2.5)

    def test_walk_and_find_depth_first(self):
        root = Span("root")
        a, b, c = Span("a"), Span("b"), Span("c")
        root.children.extend([a, b])
        a.children.append(c)
        assert [s.name for s in root.walk()] == ["root", "a", "c", "b"]
        assert root.find("c") is c
        assert root.find("missing") is None

    def test_to_dict_round_trips_through_json(self):
        root = Span("root", {"k": 1})
        child = Span("child")
        child.finish(at=child.start_time + 0.25)
        root.children.append(child)
        root.finish(at=root.start_time + 1.0)
        data = json.loads(json.dumps(root.to_dict()))
        assert data["name"] == "root"
        assert data["attributes"] == {"k": 1}
        assert data["children"][0]["duration_seconds"] == pytest.approx(0.25)

    def test_null_span_is_inert(self):
        assert not NULL_SPAN.is_recording
        NULL_SPAN.set_attribute("k", 1)  # discarded, no error
        NULL_SPAN.finish()
        assert NULL_SPAN.duration == 0.0
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.children == ()


class TestTracer:
    def test_ambient_nesting_builds_tree(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner", depth=2) as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is None
        roots = collector.drain()
        assert len(roots) == 1
        assert [s.name for s in roots[0].walk()] == ["outer", "inner"]
        assert roots[0].children[0].attributes == {"depth": 2}

    def test_explicit_parent_attaches_across_threads(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:

            def worker():
                with tracer.span("task", parent=outer):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [c.name for c in outer.children] == ["task"]

    def test_parent_none_forces_new_root(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("outer"):
            with tracer.span("detached", parent=None):
                pass
        assert sorted(s.name for s in collector.drain()) == ["detached", "outer"]

    def test_null_tracer_yields_shared_null_span(self):
        with NULL_TRACER.span("anything", key="value") as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.current_span() is None
        assert not NullTracer().enabled

    def test_collector_bounds_and_drops_oldest(self):
        collector = SpanCollector(max_spans=2)
        for name in ("a", "b", "c"):
            span = Span(name)
            span.finish()
            collector.add(span)
        assert [s.name for s in collector.roots] == ["b", "c"]
        assert collector.dropped == 1
        assert len(collector) == 2
        assert collector.drain() and len(collector) == 0

    def test_stage_timings_sums_repeated_stages(self):
        root = Span("forecast")
        for elapsed in (0.1, 0.2):
            stage = Span("stage:deseasonalize")
            stage.finish(at=stage.start_time + elapsed)
            root.children.append(stage)
        other = Span("stage:scale")
        other.finish(at=other.start_time + 0.5)
        root.children.append(other)
        timings = stage_timings(root)
        assert timings["deseasonalize"] == pytest.approx(0.3)
        assert timings["scale"] == pytest.approx(0.5)

    def test_render_span_tree_shows_names_durations_attributes(self):
        root = Span("request", {"outcome": "ok"})
        child = Span("forecast", {"scheme": "vi"})
        child.finish(at=child.start_time + 0.005)
        root.children.append(child)
        root.finish(at=root.start_time + 0.010)
        text = render_span_tree(root)
        assert "request" in text and "└─ forecast" in text
        assert "[outcome=ok]" in text and "[scheme=vi]" in text
        assert "10.00ms" in text and "5.00ms" in text
        seconds = render_span_tree(root, unit="s")
        assert "0.01s" in seconds


class TestForecastTracing:
    def test_traced_output_bit_identical_to_untraced(self):
        untraced = MultiCastForecaster().forecast(_spec(CONFIG, HISTORY, 5))
        traced = MultiCastForecaster(tracer=Tracer()).forecast(
            _spec(CONFIG, HISTORY, 5)
        )
        assert np.array_equal(untraced.values, traced.values)
        assert np.array_equal(untraced.samples, traced.samples)
        assert untraced.generated_tokens == traced.generated_tokens

    @pytest.mark.parametrize(
        "config",
        [
            CONFIG,
            MultiCastConfig(num_samples=2, sax=SaxConfig(), seed=0),
            MultiCastConfig(num_samples=2, deseasonalize="auto", seed=0),
        ],
        ids=["raw", "sax", "deseasonalized"],
    )
    def test_root_duration_equals_wall_seconds_exactly(self, config):
        collector = SpanCollector()
        output = MultiCastForecaster(tracer=Tracer(collector)).forecast(
            _spec(config, HISTORY, 4)
        )
        (root,) = collector.drain()
        assert root.name == "forecast"
        # Exact equality, not approx: the root's end time is *defined* as
        # start + sum(stage spans), and wall_seconds is that same sum.
        assert root.duration == output.wall_seconds
        assert output.wall_seconds == sum(output.timings.values())

    def test_stage_spans_reproduce_timings_dict(self):
        collector = SpanCollector()
        output = MultiCastForecaster(tracer=Tracer(collector)).forecast(
            _spec(CONFIG, HISTORY, 4)
        )
        (root,) = collector.drain()
        assert stage_timings(root) == output.timings

    def test_sample_draw_spans_one_per_draw_with_llm_children(self):
        collector = SpanCollector()
        MultiCastForecaster(tracer=Tracer(collector)).forecast(
            _spec(CONFIG, HISTORY, 3)
        )
        (root,) = collector.drain()
        generate = root.find("stage:generate")
        draws = [c for c in generate.children if c.name == "sample_draw"]
        assert len(draws) == CONFIG.num_samples
        assert sorted(d.attributes["sample_index"] for d in draws) == [0, 1]
        for draw in draws:
            assert draw.attributes["attempt"] == 1
            assert draw.attributes["tokens_generated"] > 0
            llm = draw.find("llm:generate")
            assert llm is not None
            # Prompt ingest is shared: every draw forks the prefilled model.
            assert llm.attributes["ingest"] == "fork"
            assert llm.find("llm:ingest") is None
            assert llm.find("llm:decode") is not None
        # Exactly one draw performed the shared prefill, as a sibling
        # llm:ingest span under its sample_draw.
        ingests = [d.find("llm:ingest") for d in draws]
        ingests = [s for s in ingests if s is not None]
        assert len(ingests) == 1
        (ingest,) = ingests
        assert ingest.attributes["ingest"] == "miss"  # no cache attached
        assert (
            ingest.attributes["ingested_tokens"]
            == ingest.attributes["context_tokens"]
        )

    def test_ingest_span_reports_fork_on_cache_hit(self):
        from repro.llm import IngestStateCache

        cache = IngestStateCache()
        config = MultiCastConfig(num_samples=2, seed=0)
        MultiCastForecaster(state_cache=cache).forecast(_spec(config, HISTORY, 3))
        collector = SpanCollector()
        MultiCastForecaster(
            tracer=Tracer(collector), state_cache=cache
        ).forecast(_spec(config, HISTORY, 3))
        (root,) = collector.drain()
        ingest = root.find("llm:ingest")
        assert ingest.attributes["ingest"] == "fork"
        assert ingest.attributes["ingested_tokens"] == 0

    def test_multiplex_span_records_prompt_budget(self):
        collector = SpanCollector()
        output = MultiCastForecaster(tracer=Tracer(collector)).forecast(
            _spec(CONFIG, HISTORY, 3)
        )
        (root,) = collector.drain()
        mux = root.find("stage:multiplex")
        assert mux.attributes["prompt_tokens"] == output.prompt_tokens
        assert mux.attributes["tokens_needed"] > 0
        assert root.attributes["completed_samples"] == CONFIG.num_samples
        assert root.attributes["generated_tokens"] == output.generated_tokens

    def test_per_call_tracer_overrides_constructor(self):
        collector = SpanCollector()
        forecaster = MultiCastForecaster()  # built untraced
        forecaster.forecast(_spec(CONFIG, HISTORY, 3), tracer=Tracer(collector))
        assert len(collector) == 1


class TestTimingInvariant:
    def _output(self, wall, timings):
        return ForecastOutput(
            values=np.zeros((2, 1)),
            samples=np.zeros((1, 2, 1)),
            wall_seconds=wall,
            timings=timings,
        )

    def test_repairs_float_noise_within_tolerance(self):
        output = self._output(0.3 + 5e-10, {"scale": 0.1, "generate": 0.2})
        output.assert_timing_invariant()
        assert output.wall_seconds == 0.1 + 0.2

    def test_raises_on_genuine_drift(self):
        output = self._output(1.0, {"scale": 0.1})
        with pytest.raises(DataError, match="disagrees"):
            output.assert_timing_invariant()

    def test_outputs_without_timings_are_exempt(self):
        self._output(123.0, {}).assert_timing_invariant()


class TestRunLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append({"name": "a", "outcome": "ok"})
        ledger.append({"name": "b", "outcome": "failed"})
        assert ledger.records_written == 2
        records = read_ledger(ledger.path)
        assert [r["name"] for r in records] == ["a", "b"]

    def test_concurrent_appends_stay_line_atomic(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        threads = [
            threading.Thread(
                target=lambda i=i: [
                    ledger.append({"writer": i, "k": j}) for j in range(20)
                ]
            )
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(read_ledger(ledger.path)) == 80

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            read_ledger(tmp_path / "absent.jsonl")

    def test_malformed_line_named_in_error(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"ok": 1}\n{truncated\n')
        with pytest.raises(DataError, match="line 2"):
            read_ledger(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(DataError, match="not an object"):
            read_ledger(path)

    def test_summarize_counts_and_exact_quantiles(self):
        records = [
            {"outcome": "ok", "scheme": "di", "wall_seconds": w,
             "cache_hit": i == 0, "attempts": 1 + (i == 2),
             "prompt_tokens": 10, "generated_tokens": 5}
            for i, w in enumerate([0.1, 0.2, 0.4])
        ]
        records.append({"outcome": "failed", "scheme": "vi", "attempts": 3})
        summary = summarize_ledger(records)
        assert summary.total == 4
        assert summary.outcomes == {"ok": 3, "failed": 1}
        assert summary.cache_hits == 1
        assert summary.retries == 1 + 2
        assert summary.by_scheme == {"di": 3, "vi": 1}
        assert summary.prompt_tokens == 30 and summary.generated_tokens == 15
        walls = np.array([0.1, 0.2, 0.4])
        assert summary.latency["p50"] == float(np.quantile(walls, 0.5))
        assert summary.latency["p95"] == float(np.quantile(walls, 0.95))
        assert summary.latency["mean"] == pytest.approx(walls.mean())
        assert summary.latency["max"] == 0.4
        text = summary.format()
        assert "records: 4" in text and "ok=3" in text and "failed=1" in text
        assert summary.to_dict()["outcomes"] == summary.outcomes

    def test_summarize_empty_ledger_raises(self):
        with pytest.raises(DataError, match="no records"):
            summarize_ledger([])


class TestEngineObservability:
    def _request(self, name="req", seed=0, **kwargs):
        return ForecastRequest(
            HISTORY, horizon=4, config=CONFIG, name=name, **kwargs
        )

    def test_request_span_wraps_forecast_and_lands_on_response(self):
        collector = SpanCollector()
        with ForecastEngine(num_workers=2, tracer=Tracer(collector)) as engine:
            response = engine.submit(self._request()).result()
        assert response.trace is not None
        root = response.trace
        assert root.name == "request"
        assert root.attributes["request_name"] == "req"
        assert root.attributes["outcome"] == "ok"
        assert root.attributes["cache_hit"] is False
        assert root.find("forecast") is not None
        assert [s.name for s in collector.drain()] == ["request"]

    def test_cache_hit_span_has_no_forecast_child(self):
        collector = SpanCollector()
        with ForecastEngine(num_workers=1, tracer=Tracer(collector)) as engine:
            engine.submit(self._request()).result()
            hit = engine.submit(self._request()).result()
        assert hit.cache_hit
        assert hit.trace.attributes["cache_hit"] is True
        assert hit.trace.find("forecast") is None

    def test_traced_engine_results_bit_identical_to_untraced(self):
        request = self._request()
        with ForecastEngine(num_workers=2) as engine:
            plain = engine.submit(self._request()).result()
        with ForecastEngine(num_workers=2, tracer=Tracer()) as engine:
            traced = engine.submit(request).result()
        assert np.array_equal(plain.output.values, traced.output.values)
        assert np.array_equal(plain.output.samples, traced.output.samples)

    def test_ledger_gets_one_record_per_request_including_hits_and_failures(
        self, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        bad = ForecastRequest(
            HISTORY, horizon=4,
            config=MultiCastConfig(num_samples=2, model="no-such-model"),
            name="bad",
        )
        with ForecastEngine(num_workers=2, ledger=path) as engine:
            engine.submit(self._request(name="fresh")).result()
            engine.submit(self._request(name="hit")).result()
            engine.submit(bad).result()
            assert engine.ledger.records_written == 3
        records = read_ledger(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["fresh"]["outcome"] == "ok"
        assert by_name["hit"]["cache_hit"] is True
        assert by_name["bad"]["outcome"] == "failed"
        assert "no-such-model" in by_name["bad"]["error"]
        expected_key = forecast_digest(HISTORY, CONFIG, 4, seed=0)
        assert by_name["fresh"]["config_hash"] == expected_key
        assert by_name["fresh"]["spans"] is None  # tracing was off
        assert by_name["fresh"]["timings"]
        assert by_name["fresh"]["metrics"]["requests_total"] >= 1

    def test_ledger_spans_recorded_when_tracing_on(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with ForecastEngine(num_workers=1, tracer=Tracer(), ledger=path) as engine:
            engine.submit(self._request()).result()
        (record,) = read_ledger(path)
        assert record["spans"]["name"] == "request"
        child_names = [c["name"] for c in record["spans"]["children"]]
        assert "forecast" in child_names

    def test_summary_latency_matches_metrics_registry_quantiles(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with ForecastEngine(num_workers=2, ledger=path) as engine:
            for seed in range(3):
                engine.submit(self._request(name=f"r{seed}", seed=seed)).result()
            snapshot = engine.metrics.snapshot()
        summary = summarize_ledger(path)
        histogram = snapshot["request_seconds"]
        assert summary.total == 3
        assert summary.latency["p50"] == pytest.approx(
            histogram["p50"], rel=1e-6
        )
        assert summary.latency["p95"] == pytest.approx(
            histogram["p95"], rel=1e-6
        )

    def test_retried_draw_shows_sibling_attempt_spans(self, tmp_path):
        register_model(
            ModelSpec(
                name="flaky-trace-sim",
                factory=lambda v: _FlakyPPM(v, max_order=2),
                cost=TokenCostModel(0.1),
            ),
            overwrite=True,
        )
        _FlakyPPM.failures["remaining"] = 1
        collector = SpanCollector()
        path = tmp_path / "runs.jsonl"
        config = MultiCastConfig(num_samples=2, model="flaky-trace-sim", seed=0)
        with ForecastEngine(
            num_workers=1, tracer=Tracer(collector), ledger=path
        ) as engine:
            response = engine.submit(
                ForecastRequest(HISTORY, horizon=3, config=config, name="flaky")
            ).result()
        assert response.ok
        assert response.attempts >= 1
        root = collector.drain()[0]
        draws = [s for s in root.walk() if s.name == "sample_draw"]
        attempts = sorted(s.attributes["attempt"] for s in draws)
        # One draw failed once and was retried: its task records attempt 1
        # and 2 as sibling spans.
        assert attempts.count(2) == 1
        assert len(draws) == config.num_samples + 1
        (record,) = read_ledger(path)
        assert record["outcome"] == "ok"

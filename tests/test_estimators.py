"""Tests for the common Estimator protocol across all baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ARIMA,
    VAR,
    GRUForecaster,
    HoltWinters,
    LSTMForecaster,
    SimpleExponentialSmoothing,
    available_estimators,
    estimator_param_names,
    make_estimator,
)
from repro.core import Estimator, PerDimension
from repro.exceptions import ConfigError, FittingError

RNG = np.random.default_rng(7)
SERIES = np.cumsum(RNG.normal(size=(40, 2)), axis=0) + 25.0
UNIVARIATE = SERIES[:, 0]

#: Registry estimators that are cheap enough to fit in a unit test.
FAST_NAMES = [
    "arima", "ses", "holt", "holt-winters", "theta", "var",
    "naive", "seasonal-naive", "drift", "llmtime",
]

#: Params needed to make each estimator constructible/cheap in tests.
TEST_KWARGS = {
    "holt-winters": {"period": 4},
    "seasonal-naive": {"period": 4},
    "llmtime": {"num_samples": 1, "model": "uniform-sim"},
}


class TestProtocol:
    def test_registry_lists_every_baseline(self):
        names = available_estimators()
        assert names == sorted(names)
        for name in FAST_NAMES + ["lstm", "gru"]:
            assert name in names

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_registry_instances_satisfy_protocol(self, name):
        estimator = make_estimator(name, **TEST_KWARGS.get(name, {}))
        assert isinstance(estimator, Estimator)

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_fit_predict_shape(self, name):
        estimator = make_estimator(name, **TEST_KWARGS.get(name, {}))
        forecast = estimator.fit(SERIES).predict(3)
        assert np.asarray(forecast).shape == (3, SERIES.shape[1])

    def test_make_estimator_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown estimator"):
            make_estimator("prophet")

    def test_make_estimator_rejects_unknown_param(self):
        with pytest.raises(ConfigError, match="alpha_decay"):
            make_estimator("ses", alpha_decay=0.1)

    def test_param_names_are_sorted_and_canonical(self):
        assert list(estimator_param_names("lstm")) == sorted(
            estimator_param_names("lstm")
        )
        assert "hidden_size" in estimator_param_names("lstm")
        assert "order" in estimator_param_names("arima")


class TestParamsApi:
    def test_get_params_round_trip(self):
        model = LSTMForecaster(window=5, hidden_size=8, epochs=2)
        params = model.get_params()
        rebuilt = LSTMForecaster(**params)
        assert rebuilt.get_params() == params

    def test_set_params_returns_self_and_revalidates(self):
        model = SimpleExponentialSmoothing()
        assert model.set_params(alpha=0.4) is model
        assert model.get_params()["alpha"] == 0.4

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ConfigError, match="beta"):
            SimpleExponentialSmoothing().set_params(beta=1.0)

    def test_clone_is_unfitted_with_same_params(self):
        model = HoltWinters(period=4).fit(UNIVARIATE)
        twin = model.clone()
        assert twin is not model
        assert twin.get_params() == model.get_params()
        with pytest.raises(FittingError):
            twin.predict(2)

    @pytest.mark.parametrize("name", FAST_NAMES + ["lstm", "gru"])
    def test_get_test_params_construct(self, name):
        estimator = make_estimator(name, **TEST_KWARGS.get(name, {}))
        if isinstance(estimator, PerDimension):
            estimator = estimator.estimator
        target = type(estimator)
        for params in target.get_test_params():
            target(**params)

    def test_per_dimension_exposes_inner_params(self):
        wrapped = make_estimator("arima", order=(1, 0, 0))
        assert isinstance(wrapped, PerDimension)
        assert wrapped.get_params()["order"] == (1, 0, 0)


class TestLegacyShims:
    def test_positional_arima_order_warns_then_matches(self):
        with pytest.warns(DeprecationWarning, match="Estimator API"):
            legacy = ARIMA((1, 0, 0))
        assert legacy.get_params() == ARIMA(order=(1, 0, 0)).get_params()

    def test_positional_var_order_warns(self):
        with pytest.warns(DeprecationWarning, match="Estimator API"):
            VAR(2)

    def test_positional_lstm_args_warn(self):
        with pytest.warns(DeprecationWarning, match="Estimator API"):
            LSTMForecaster(4, 8)

    def test_keyword_construction_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            GRUForecaster(window=4, hidden_size=8)

    def test_llmtime_config_object_warns(self):
        from repro.baselines import LLMTimeConfig

        with pytest.warns(DeprecationWarning, match="Estimator API"):
            model = LLMTime_from_config(LLMTimeConfig(num_samples=1))
        assert model.num_samples == 1


def LLMTime_from_config(config):
    from repro.baselines import LLMTime

    return LLMTime(config)


class TestSeedDeterminism:
    @pytest.mark.parametrize("name", ["lstm", "gru", "llmtime"])
    def test_same_seed_same_forecast(self, name):
        kwargs = {"seed": 3}
        if name in ("lstm", "gru"):
            kwargs.update(window=4, hidden_size=4, epochs=1)
        else:
            kwargs.update(num_samples=1, model="uniform-sim")
        one = make_estimator(name, **kwargs).fit(SERIES).predict(2)
        two = make_estimator(name, **kwargs).fit(SERIES).predict(2)
        assert np.array_equal(one, two)

"""Tests for rolling-origin backtesting, the CLI, and the recency PPM."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import gas_rate, synthetic_multivariate
from repro.evaluation import rolling_origin_evaluation
from repro.exceptions import ConfigError
from repro.llm import PPMLanguageModel, RecencyPPMLanguageModel


class TestBacktest:
    def test_windows_and_origins(self):
        dataset = synthetic_multivariate(n=120, num_dims=2, seed=0)
        result = rolling_origin_evaluation("naive", dataset, horizon=10, num_windows=3)
        assert result.num_windows == 3
        assert result.origins == [90, 100, 110]
        assert len(result.window_rmse) == 3

    def test_mean_and_std(self):
        dataset = synthetic_multivariate(n=120, num_dims=1, seed=1)
        result = rolling_origin_evaluation("drift", dataset, horizon=8, num_windows=4)
        mean = result.mean_rmse()
        std = result.std_rmse()
        assert set(mean) == {"x0"}
        assert mean["x0"] >= 0 and std["x0"] >= 0

    def test_custom_stride_overlaps(self):
        dataset = synthetic_multivariate(n=100, num_dims=1, seed=2)
        result = rolling_origin_evaluation(
            "naive", dataset, horizon=10, num_windows=3, stride=5
        )
        assert result.origins == [80, 85, 90]

    def test_llm_method_supported(self):
        from repro.core import ForecastSpec

        dataset = gas_rate(n=120)
        result = rolling_origin_evaluation(
            "multicast-di",
            dataset,
            horizon=8,
            num_windows=2,
            spec=ForecastSpec(num_samples=2),
        )
        assert result.num_windows == 2

    def test_llm_method_loose_options_warn_but_match_spec(self):
        from repro.core import ForecastSpec

        dataset = gas_rate(n=120)
        with pytest.warns(DeprecationWarning, match="ForecastSpec"):
            legacy = rolling_origin_evaluation(
                "multicast-di", dataset, horizon=8, num_windows=2, num_samples=2
            )
        modern = rolling_origin_evaluation(
            "multicast-di",
            dataset,
            horizon=8,
            num_windows=2,
            spec=ForecastSpec(num_samples=2),
        )
        assert legacy.window_rmse == modern.window_rmse

    def test_insufficient_history_rejected(self):
        dataset = synthetic_multivariate(n=60, num_dims=1, seed=3)
        with pytest.raises(ConfigError):
            rolling_origin_evaluation("naive", dataset, horizon=20, num_windows=3)

    def test_invalid_args_rejected(self):
        dataset = synthetic_multivariate(n=100, num_dims=1, seed=4)
        with pytest.raises(ConfigError):
            rolling_origin_evaluation("naive", dataset, horizon=0)
        with pytest.raises(ConfigError):
            rolling_origin_evaluation("naive", dataset, horizon=5, num_windows=0)
        with pytest.raises(ConfigError):
            rolling_origin_evaluation("naive", dataset, horizon=5, stride=0)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "multicast-di" in out
        assert "llama2-7b-sim" in out

    def test_table_i(self, capsys):
        assert main(["table", "i"]) == 0
        assert "gas_rate" in capsys.readouterr().out

    def test_forecast_holdout_scores(self, capsys):
        code = main(["forecast", "--dataset", "gas_rate", "--num-samples", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE[GasRate]" in out
        assert "RMSE[CO2]" in out

    def test_forecast_future_with_output(self, tmp_path, capsys):
        out_path = tmp_path / "forecast.csv"
        code = main([
            "forecast", "--dataset", "gas_rate", "--num-samples", "2",
            "--horizon", "5", "--output", str(out_path),
        ])
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines[0] == "GasRate,CO2"
        assert len(lines) == 6

    def test_forecast_from_csv_with_sax_and_plot(self, tmp_path, capsys):
        from repro.data import save_csv

        path = tmp_path / "input.csv"
        save_csv(gas_rate(n=120), path)
        code = main([
            "forecast", "--csv", str(path), "--num-samples", "2",
            "--sax-segment", "6", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE" in out
        assert "actual" in out  # plot legend

    def test_missing_csv_reports_error(self, capsys):
        code = main(["forecast", "--csv", "/nonexistent/file.csv"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate_command(self, capsys):
        code = main([
            "evaluate", "--dataset", "gas_rate",
            "--methods", "naive", "drift", "theta",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "naive" in out and "theta" in out

    def test_figure_with_csv_out(self, tmp_path, capsys):
        out_path = tmp_path / "fig.csv"
        code = main(
            ["figure", "2", "--num-samples", "2", "--csv-out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_forecast_strategy_flag(self, capsys):
        code = main([
            "forecast", "--dataset", "gas_rate", "--num-samples", "2",
            "--horizon", "4", "--strategy", "patch", "--patch-length", "4",
        ])
        assert code == 0
        assert "tokens:" in capsys.readouterr().out

    def test_batch_strategy_override(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({"jobs": [
            {"name": "j", "dataset": "gas_rate", "horizon": 2,
             "num_samples": 2, "strategy": "patch", "patch_length": 3},
        ]}))
        ledger = tmp_path / "runs.jsonl"
        code = main([
            "batch", "--manifest", str(manifest),
            "--strategy", "default", "--ledger", str(ledger),
        ])
        assert code == 0
        record = json.loads(ledger.read_text().splitlines()[0])
        # "default" resolves to the concrete digit pipeline; the ledger
        # records the strategy that actually ran.
        assert record["strategy"] == "digit"

    def test_ledger_records_strategy(self, tmp_path):
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({"jobs": [
            {"name": "j", "dataset": "gas_rate", "horizon": 2,
             "num_samples": 2, "strategy": "patch"},
        ]}))
        ledger = tmp_path / "runs.jsonl"
        assert main(["batch", "--manifest", str(manifest),
                     "--ledger", str(ledger)]) == 0
        record = json.loads(ledger.read_text().splitlines()[0])
        assert record["strategy"] == "patch"

    def test_output_to_missing_directory_fails_fast(self, capsys):
        # regression: this used to run the whole forecast, then crash with
        # a raw FileNotFoundError traceback at save time.
        code = main([
            "forecast", "--dataset", "gas_rate", "--num-samples", "2",
            "--horizon", "3", "--output", "/nonexistent_dir_xyz/out.csv",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--output" in err

    def test_output_path_is_directory_rejected(self, tmp_path, capsys):
        code = main([
            "forecast", "--dataset", "gas_rate", "--num-samples", "2",
            "--horizon", "3", "--output", str(tmp_path),
        ])
        assert code == 2
        assert "directory" in capsys.readouterr().err

    def test_metrics_out_missing_directory_fails_fast(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({"jobs": [
            {"name": "j", "dataset": "gas_rate", "horizon": 2,
             "num_samples": 2},
        ]}))
        code = main([
            "batch", "--manifest", str(manifest),
            "--metrics-out", "/nonexistent_dir_xyz/m.json",
        ])
        assert code == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_ledger_summarize_on_directory_reports_error(self, tmp_path, capsys):
        # regression: raw IsADirectoryError traceback before OSError was
        # treated as a user error.
        code = main(["ledger", "summarize", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_backtest_strategy_flag(self, capsys):
        code = main([
            "backtest", "--dataset", "gas_rate", "--horizon", "5",
            "--windows", "2", "--num-samples", "2", "--strategy", "patch",
        ])
        assert code == 0
        assert "RMSE" in capsys.readouterr().out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_parser_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["forecast", "--dataset", "gas_rate", "--strategy", "bogus"]
            )

    def test_parser_rejects_csv_and_dataset_together(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["forecast", "--dataset", "gas_rate", "--csv", "x.csv"]
            )


class TestRecencyPPM:
    def test_distribution_proper(self):
        model = RecencyPPMLanguageModel(vocab_size=5, max_order=3)
        model.reset([0, 1, 2] * 10)
        probs = model.next_distribution()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_learns_a_cycle(self):
        model = RecencyPPMLanguageModel(vocab_size=5, max_order=4)
        model.reset([0, 1, 2] * 20)
        assert model.next_distribution()[0] > 0.8

    def test_adapts_to_regime_change_faster_than_plain_ppm(self):
        """After a mid-stream switch, decayed counts favour the new regime."""
        old_regime = [0, 1] * 40
        new_regime = [0, 2] * 10
        context = old_regime + new_regime  # ends ... 0 2 0 2; next after 0?
        recency = RecencyPPMLanguageModel(vocab_size=4, max_order=1, halflife=20.0)
        plain = PPMLanguageModel(vocab_size=4, max_order=1)
        recency.reset(context + [0])
        plain.reset(context + [0])
        assert recency.next_distribution()[2] > plain.next_distribution()[2]

    def test_long_halflife_converges_to_plain_ppm(self):
        rng = np.random.default_rng(0)
        context = rng.integers(0, 4, size=100).tolist()
        recency = RecencyPPMLanguageModel(vocab_size=4, max_order=3, halflife=1e9)
        plain = PPMLanguageModel(vocab_size=4, max_order=3)
        recency.reset(context)
        plain.reset(context)
        assert np.allclose(
            recency.next_distribution(), plain.next_distribution(), atol=1e-6
        )

    def test_generation_works(self):
        model = RecencyPPMLanguageModel(vocab_size=5, max_order=4)
        result = model.generate(
            [0, 1, 2] * 15, 9, np.random.default_rng(0), temperature=0.0
        )
        assert result.tokens == [0, 1, 2] * 3

    def test_invalid_args(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            RecencyPPMLanguageModel(vocab_size=4, halflife=0.0)
        with pytest.raises(GenerationError):
            RecencyPPMLanguageModel(vocab_size=4, max_order=-1)

    def test_registered_preset_forecasts(self):
        from repro.core import ForecastSpec, MultiCastForecaster

        history = synthetic_multivariate(n=100, num_dims=2, seed=0).values
        spec = ForecastSpec(
            series=history, horizon=6, model="ppm-recency-sim", num_samples=2
        )
        output = MultiCastForecaster().forecast(spec)
        assert output.values.shape == (6, 2)

"""Tests for conformal intervals, the token planner, and perplexity scoring."""

import numpy as np
import pytest

from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
    plan_forecast,
)
from repro.data import Dataset, gas_rate, synthetic_multivariate
from repro.evaluation import ConformalForecaster
from repro.exceptions import ConfigError, DataError
from repro.llm import bits_per_token, rank_models_by_perplexity


class TestConformal:
    def _dataset(self, n=160, seed=0):
        return synthetic_multivariate(n=n, num_dims=2, seed=seed)

    def test_bands_bracket_the_point_forecast(self):
        result = ConformalForecaster("theta", level=0.8).forecast(
            self._dataset(), horizon=10
        )
        assert (result.lower <= result.values).all()
        assert (result.values <= result.upper).all()
        assert result.values.shape == (10, 2)

    def test_higher_level_gives_wider_bands(self):
        dataset = self._dataset(seed=1)
        narrow = ConformalForecaster("theta", level=0.5, calibration_windows=4)
        wide = ConformalForecaster("theta", level=0.95, calibration_windows=4)
        narrow_width = narrow.forecast(dataset, 8).width().mean()
        wide_width = wide.forecast(dataset, 8).width().mean()
        assert wide_width >= narrow_width

    def test_achieves_rough_coverage_on_holdout(self):
        # Calibrate on the first part, check coverage on the true tail.
        full = self._dataset(n=200, seed=2)
        horizon = 15
        train = Dataset("train", full.values[:-horizon], full.dim_names)
        actual = full.values[-horizon:]
        result = ConformalForecaster(
            "theta", level=0.9, calibration_windows=4
        ).forecast(train, horizon)
        covered = np.mean((actual >= result.lower) & (actual <= result.upper))
        assert covered >= 0.5  # loose: exchangeability is only approximate

    def test_llm_method_supported(self):
        result = ConformalForecaster(
            "multicast-di", level=0.8, num_samples=2
        ).forecast(gas_rate(n=150), horizon=8)
        assert result.values.shape == (8, 2)

    def test_too_short_dataset_rejected(self):
        with pytest.raises(DataError):
            ConformalForecaster("theta", calibration_windows=5).forecast(
                self._dataset(n=60), horizon=20
            )

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            ConformalForecaster("theta", level=1.0)
        with pytest.raises(ConfigError):
            ConformalForecaster("theta", calibration_windows=0)
        forecaster = ConformalForecaster("theta")
        with pytest.raises(DataError):
            forecaster.forecast(self._dataset(), horizon=0)


class TestPlanner:
    def test_plan_matches_actual_run_raw(self):
        config = MultiCastConfig(scheme="di", num_samples=3)
        history, future = gas_rate().train_test_split()
        plan = plan_forecast(config, history.shape[0], 2, len(future))
        output = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=len(future))
        )
        assert plan.prompt_tokens == output.prompt_tokens
        assert plan.generated_tokens == output.generated_tokens
        assert plan.simulated_seconds == pytest.approx(output.simulated_seconds)

    def test_plan_matches_actual_run_sax(self):
        config = MultiCastConfig(scheme="vc", num_samples=2, sax=SaxConfig())
        history, future = gas_rate().train_test_split()
        plan = plan_forecast(config, history.shape[0], 2, len(future))
        output = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=len(future))
        )
        assert plan.prompt_tokens == output.prompt_tokens
        assert plan.generated_tokens == output.generated_tokens

    def test_plan_respects_context_budget(self):
        config = MultiCastConfig(num_samples=1, max_context_tokens=100)
        plan = plan_forecast(config, history_length=5000, num_dims=2, horizon=4)
        assert plan.prompt_tokens <= 100 + 7  # one extra row's tokens at most

    def test_sax_plan_is_far_cheaper(self):
        raw = plan_forecast(MultiCastConfig(num_samples=5), 240, 2, 60)
        sax = plan_forecast(
            MultiCastConfig(num_samples=5, sax=SaxConfig(segment_length=6)),
            240, 2, 60,
        )
        assert sax.total_tokens * 5 < raw.total_tokens
        assert sax.simulated_seconds * 5 < raw.simulated_seconds

    def test_total_tokens_accounts_prompt_per_sample(self):
        plan = plan_forecast(MultiCastConfig(num_samples=4), 100, 1, 10)
        assert plan.total_tokens == 4 * plan.prompt_tokens + plan.generated_tokens

    def test_invalid_args(self):
        config = MultiCastConfig()
        with pytest.raises(ConfigError):
            plan_forecast(config, 2, 1, 5)
        with pytest.raises(ConfigError):
            plan_forecast(config, 100, 0, 5)
        with pytest.raises(ConfigError):
            plan_forecast(config, 100, 1, 0)


class TestPerplexity:
    def test_patterned_series_scores_below_noise(self):
        t = np.arange(150.0)
        periodic = np.sin(2 * np.pi * t / 10.0)
        noise = np.random.default_rng(0).normal(size=150)
        assert bits_per_token("llama2-7b-sim", periodic) < bits_per_token(
            "llama2-7b-sim", noise
        )

    def test_llama_preset_beats_phi_preset(self):
        """The ranking agrees with Table III's RMSE ordering."""
        series = gas_rate().dimension("CO2")
        ranking = rank_models_by_perplexity(
            ["phi2-2.7b-sim", "llama2-7b-sim"], series
        )
        assert ranking[0][0] == "llama2-7b-sim"

    def test_ranking_sorted_ascending(self):
        series = gas_rate().dimension("GasRate")
        ranking = rank_models_by_perplexity(
            ["llama2-7b-sim", "phi2-2.7b-sim", "uniform-sim"], series
        )
        bits = [b for _, b in ranking]
        assert bits == sorted(bits)

    def test_uniform_model_bits_are_log2_vocab(self):
        series = np.sin(np.arange(60.0) / 3.0)
        bits = bits_per_token("uniform-sim", series)
        assert bits == pytest.approx(np.log2(11), abs=1e-6)

    def test_validation(self):
        with pytest.raises(DataError):
            bits_per_token("llama2-7b-sim", np.ones(4))
        with pytest.raises(DataError):
            bits_per_token("llama2-7b-sim", np.ones(20), warmup_fraction=1.0)
        with pytest.raises(DataError):
            rank_models_by_perplexity([], np.ones(20))

"""Tests for repro.sweeps: expansion, running, halving, resume, scale."""

import json

import numpy as np
import pytest

from repro.core import ForecastSpec
from repro.exceptions import ConfigError
from repro.sweeps import (
    KNOB_ALIASES,
    SweepRunner,
    SweepSpec,
    expand_trials,
)

RNG = np.random.default_rng(21)
SERIES = np.cumsum(RNG.normal(size=(48, 2)), axis=0) + 30.0


def _mc_sweep(**overrides):
    kwargs = dict(
        method="multicast-vi",
        space={"b": [1, 2], "num_samples": [1]},
        horizon=3,
        num_windows=2,
        fixed={"model": "uniform-sim"},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepSpec:
    def test_paper_aliases_canonicalize(self):
        sweep = _mc_sweep(space={"b": [1], "w": [2], "a": [4]})
        assert set(sweep.space) == {
            KNOB_ALIASES["b"], KNOB_ALIASES["w"], KNOB_ALIASES["a"]
        }

    def test_unknown_multicast_knob_rejected(self):
        with pytest.raises(ConfigError, match="learning_rate"):
            _mc_sweep(space={"learning_rate": [0.1]})

    def test_unknown_baseline_param_rejected(self):
        with pytest.raises(ConfigError, match="alpha"):
            SweepSpec(method="lstm", space={"alpha": [0.1]})

    def test_alias_collision_rejected(self):
        with pytest.raises(ConfigError, match="twice"):
            _mc_sweep(space={"b": [1], "num_digits": [2]})

    def test_space_and_fixed_overlap_rejected(self):
        with pytest.raises(ConfigError, match="both space and fixed"):
            _mc_sweep(space={"b": [1]}, fixed={"num_digits": 3})

    def test_grid_num_trials_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="exactly 2"):
            _mc_sweep(num_trials=5)

    def test_random_requires_num_trials(self):
        with pytest.raises(ConfigError, match="num_trials"):
            _mc_sweep(search="random")

    def test_sweep_id_is_content_addressed(self):
        assert _mc_sweep().sweep_id == _mc_sweep().sweep_id
        assert _mc_sweep().sweep_id != _mc_sweep(seed=1).sweep_id

    def test_windows_for_rung_allocation(self):
        sweep = _mc_sweep(num_windows=9, num_rungs=3, eta=3)
        assert [sweep.windows_for_rung(r) for r in range(3)] == [1, 3, 9]

    def test_template_folds_sax_keys(self):
        sweep = _mc_sweep(
            fixed={"model": "uniform-sim", "sax.segment_length": 3}
        )
        template = sweep.spec_template()
        assert template.sax.segment_length == 3
        assert template.series is None


class TestExpansion:
    def test_grid_expansion_is_deterministic(self):
        sweep = _mc_sweep(space={"b": [1, 2, 3], "num_samples": [1, 2]})
        first = expand_trials(sweep)
        second = expand_trials(sweep)
        assert first == second
        assert len(first) == 6 == sweep.total_trials

    def test_random_expansion_is_seeded(self):
        sweep = _mc_sweep(
            space={"b": [1, 2, 3, 4]}, search="random", num_trials=10
        )
        assert expand_trials(sweep) == expand_trials(sweep)
        other = _mc_sweep(
            space={"b": [1, 2, 3, 4]}, search="random", num_trials=10, seed=9
        )
        assert expand_trials(other) != expand_trials(sweep)

    def test_trial_seed_depends_only_on_content(self):
        sweep = _mc_sweep(space={"b": [1, 2]})
        reordered = _mc_sweep(space={"b": [2, 1]})
        by_digest = {t.trial_digest: t.seed for t in expand_trials(sweep)}
        for trial in expand_trials(reordered):
            assert by_digest[trial.trial_digest] == trial.seed


class TestSpecTemplateEdgeCases:
    """The ForecastSpec.replace/template behaviors sweeps lean on."""

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="not_a_field"):
            ForecastSpec(num_samples=2).replace(not_a_field=1)

    def test_replace_canonicalizes_aliases(self):
        with pytest.warns(DeprecationWarning, match="num_samples"):
            spec = ForecastSpec(num_samples=2).replace(n_samples=3)
        assert spec.num_samples == 3

    def test_replace_revalidates_fields(self):
        with pytest.raises(Exception):
            ForecastSpec().replace(execution="warp-speed")

    def test_template_binds_series_and_horizon(self):
        template = ForecastSpec(num_samples=1)
        bound = template.replace(series=SERIES, horizon=2, seed=4)
        assert bound.series.shape == SERIES.shape
        assert bound.horizon == 2
        assert template.series is None

    def test_backtest_rejects_bound_spec_naming_fields(self):
        from repro.data import gas_rate
        from repro.evaluation import rolling_origin_evaluation

        with pytest.raises(ConfigError, match="series.*horizon"):
            rolling_origin_evaluation(
                "multicast-vi",
                gas_rate(),
                horizon=4,
                spec=ForecastSpec(series=SERIES, horizon=4),
            )


class TestSweepRunner:
    def test_run_scores_and_records_every_trial(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sweep = _mc_sweep()
        report = SweepRunner(ledger=str(ledger)).run(sweep, SERIES)
        assert report.num_trials == 2
        assert report.trials_run == 2
        assert report.best_params is not None
        records = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["kind"] == "sweep_trial"
            assert record["sweep_id"] == sweep.sweep_id
            assert record["outcome"] == "ok"
            assert record["rung"] == 0
            assert record["trial_digest"]

    def test_same_seed_is_deterministic(self, tmp_path):
        sweep = _mc_sweep(space={"b": [1, 2, 3]})
        one = SweepRunner(ledger=str(tmp_path / "a.jsonl")).run(sweep, SERIES)
        two = SweepRunner(ledger=str(tmp_path / "b.jsonl")).run(sweep, SERIES)
        assert one.best_index == two.best_index
        assert one.best_score == two.best_score
        assert [t.scores for t in one.trials] == [t.scores for t in two.trials]

    def test_ledger_optional_for_plain_runs(self):
        report = SweepRunner().run(_mc_sweep(), SERIES)
        assert report.trials_run == 2

    def test_resume_without_ledger_rejected(self):
        with pytest.raises(ConfigError, match="ledger"):
            SweepRunner().run(_mc_sweep(), SERIES, resume=True)

    def test_baseline_sweep_runs_without_engine(self, tmp_path):
        sweep = SweepSpec(
            method="lstm",
            space={"window": [3, 4]},
            fixed={"hidden_size": 4, "epochs": 1, "batch_size": 8},
            horizon=3,
            num_windows=2,
        )
        report = SweepRunner(ledger=str(tmp_path / "l.jsonl")).run(
            sweep, SERIES
        )
        assert report.trials_run == 2
        assert report.best_params["window"] in (3, 4)

    def test_failed_trials_are_recorded_not_fatal(self, tmp_path):
        # alphabet_size=1 is an invalid SAX alphabet -> per-trial error.
        sweep = _mc_sweep(space={"a": [1, 4], "num_samples": [1]})
        ledger = tmp_path / "l.jsonl"
        report = SweepRunner(ledger=str(ledger)).run(sweep, SERIES)
        assert report.trials_failed == 1
        assert report.best_params is not None
        outcomes = {
            json.loads(line)["outcome"]
            for line in ledger.read_text().splitlines()
        }
        assert outcomes == {"ok", "error"}

    def test_successive_halving_prunes_and_records_rungs(self, tmp_path):
        sweep = _mc_sweep(
            space={"b": [1, 2, 3, 4]},
            num_windows=4,
            num_rungs=2,
            eta=2,
        )
        ledger = tmp_path / "l.jsonl"
        report = SweepRunner(ledger=str(ledger)).run(sweep, SERIES)
        pruned = [t for t in report.trials if t.outcome == "pruned"]
        survivors = [t for t in report.trials if 1 in t.scores]
        assert len(survivors) == 2
        assert len(pruned) == 2
        records = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert sum(r["rung"] == 0 for r in records) == 4
        assert sum(r["rung"] == 1 for r in records) == 2

    def test_marginals_cover_every_swept_knob(self):
        report = SweepRunner().run(
            _mc_sweep(space={"b": [1, 2], "a": [4, 5]}), SERIES
        )
        assert set(report.marginals) == {"num_digits", "sax.alphabet_size"}


class TestResume:
    def test_kill_mid_sweep_then_resume_runs_only_the_rest(self, tmp_path):
        sweep = _mc_sweep(space={"b": [1, 2, 3, 4], "num_samples": [1, 2]})
        total = sweep.total_trials
        clean = SweepRunner(ledger=str(tmp_path / "clean.jsonl")).run(
            sweep, SERIES
        )

        ledger = tmp_path / "crash.jsonl"
        seen = []

        class Killed(RuntimeError):
            pass

        def killer(trial, rung, score):
            seen.append(trial.index)
            if len(seen) == 3:
                raise Killed()

        with pytest.raises(Killed):
            SweepRunner(ledger=str(ledger)).run(
                sweep, SERIES, on_trial=killer
            )
        # The ledger append happens before the callback: all three
        # completed trials survived the crash.
        assert len(ledger.read_text().splitlines()) == 3

        resumed = SweepRunner(ledger=str(ledger)).run(
            sweep, SERIES, resume=True
        )
        assert resumed.trials_resumed == 3
        assert resumed.trials_run == total - 3
        assert resumed.best_index == clean.best_index
        assert resumed.best_score == clean.best_score
        assert [t.scores for t in resumed.trials] == [
            t.scores for t in clean.trials
        ]
        # A second resume re-executes nothing at all.
        again = SweepRunner(ledger=str(ledger)).run(
            sweep, SERIES, resume=True
        )
        assert again.trials_run == 0
        assert again.trials_resumed == total
        assert again.best_index == clean.best_index

    def test_resume_ignores_other_sweeps_records(self, tmp_path):
        ledger = tmp_path / "shared.jsonl"
        SweepRunner(ledger=str(ledger)).run(_mc_sweep(), SERIES)
        other = _mc_sweep(seed=5)
        report = SweepRunner(ledger=str(ledger)).run(
            other, SERIES, resume=True
        )
        assert report.trials_resumed == 0
        assert report.trials_run == other.total_trials


class TestScale:
    """The acceptance scenario: a 200-trial sweep through shards."""

    def test_200_trials_sharded_matches_single_process(self, tmp_path):
        from repro.sharding import ShardedEngine

        mc_sweep = SweepSpec(
            method="multicast-vi",
            space={
                "b": [1, 2, 3, 4],
                "a": [3, 4, 5, 6],
                "num_samples": [1, 2],
                "temperature": [0.5, 1.0, 1.5],
                "w": [2, 3],
            },
            horizon=2,
            num_windows=1,
            fixed={"model": "uniform-sim"},
        )
        lstm_sweep = SweepSpec(
            method="lstm",
            space={
                "window": [3, 4],
                "hidden_size": [4, 8],
                "learning_rate": [0.01, 0.05],
            },
            fixed={"epochs": 1, "batch_size": 8},
            horizon=2,
            num_windows=1,
        )
        assert mc_sweep.total_trials + lstm_sweep.total_trials >= 200

        sharded_ledger = tmp_path / "sharded.jsonl"
        with ShardedEngine(num_shards=2) as engine:
            runner = SweepRunner(engine, ledger=str(sharded_ledger))
            sharded = runner.run(mc_sweep, SERIES)
            lstm_report = runner.run(lstm_sweep, SERIES)

        # One ledger record per trial, tagged with digest/sweep_id/rung.
        records = [
            json.loads(line)
            for line in sharded_ledger.read_text().splitlines()
        ]
        assert len(records) == mc_sweep.total_trials + lstm_sweep.total_trials
        for record in records:
            assert record["kind"] == "sweep_trial"
            assert record["sweep_id"] in (
                mc_sweep.sweep_id, lstm_sweep.sweep_id
            )
            assert record["trial_digest"]
            assert record["rung"] == 0
        digests = [
            r["trial_digest"]
            for r in records
            if r["sweep_id"] == mc_sweep.sweep_id
        ]
        assert len(set(digests)) == mc_sweep.total_trials

        # Single-process run: identical trials, scores, and best config.
        local = SweepRunner(ledger=str(tmp_path / "local.jsonl")).run(
            mc_sweep, SERIES
        )
        assert local.best_index == sharded.best_index
        assert local.best_score == sharded.best_score
        assert local.best_params == sharded.best_params
        assert [t.scores for t in local.trials] == [
            t.scores for t in sharded.trials
        ]
        assert lstm_report.best_params is not None

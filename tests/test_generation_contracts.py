"""Cross-cutting contracts of constrained generation.

The load-bearing promise of the whole pipeline: whatever backend model is
plugged in, generation under a scheme's grammar produces a stream the
strict parser accepts, and vocabulary-level masking never lets a foreign
token through.  Tested across every registered model preset, every
multiplexing scheme, and randomised grammars via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import get_multiplexer, MULTIPLEX_SCHEMES
from repro.encoding import DigitCodec, digit_vocabulary
from repro.llm import (
    PeriodicPatternConstraint,
    SetConstraint,
    available_models,
    get_model,
)

VOCAB = digit_vocabulary()
DIGIT_IDS = VOCAB.ids_of("0123456789")
SEPARATOR_ID = VOCAB.id_of(",")


def _prompt(scheme: str, num_dims: int, num_digits: int, n: int = 20):
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 10**num_digits, size=(n, num_dims))
    mux = get_multiplexer(scheme)
    codec = DigitCodec(num_digits)
    tokens = mux.mux(codes, codec) + [","]
    return VOCAB.encode(tokens), mux, codec


@pytest.mark.parametrize("model_name", sorted(available_models()))
@pytest.mark.parametrize("scheme", sorted(MULTIPLEX_SCHEMES))
def test_grammar_output_always_parses_strictly(model_name, scheme):
    """Every preset × every scheme: grammar output demuxes to full rows."""
    num_dims, num_digits = 2, 3
    prompt, mux, codec = _prompt(scheme, num_dims, num_digits)
    pattern = mux.constraint_pattern(num_dims, num_digits, DIGIT_IDS, SEPARATOR_ID)
    constraint = PeriodicPatternConstraint(pattern)
    model = get_model(model_name, vocab_size=len(VOCAB))
    steps = 4
    needed = steps * mux.tokens_per_timestamp(num_dims, num_digits)
    result = model.generate(
        prompt, needed, np.random.default_rng(1), constraint=constraint
    )
    rows = mux.demux(VOCAB.decode(result.tokens), num_dims, codec, row_offset=20)
    assert rows.shape == (steps, num_dims)
    assert (rows >= 0).all() and (rows < 10**num_digits).all()


@pytest.mark.parametrize("model_name", sorted(available_models()))
def test_vocabulary_mask_never_leaks(model_name):
    """Set-constrained generation emits only admissible ids."""
    allowed = frozenset({1, 4, 7})
    model = get_model(model_name, vocab_size=len(VOCAB))
    result = model.generate(
        [1, 4, 7] * 10, 30, np.random.default_rng(2),
        constraint=SetConstraint(allowed),
    )
    assert set(result.tokens) <= allowed


@given(
    st.integers(min_value=1, max_value=4),   # dims
    st.integers(min_value=1, max_value=4),   # digits
    st.sampled_from(sorted(MULTIPLEX_SCHEMES)),
    st.integers(min_value=0, max_value=100),  # rng seed
)
@settings(max_examples=30, deadline=None)
def test_grammar_round_trip_property(num_dims, num_digits, scheme, seed):
    """Random shapes: grammar generation + strict demux always consistent."""
    prompt, mux, codec = _prompt(scheme, num_dims, num_digits, n=8)
    pattern = mux.constraint_pattern(num_dims, num_digits, DIGIT_IDS, SEPARATOR_ID)
    constraint = PeriodicPatternConstraint(pattern)
    model = get_model("llama2-7b-sim", vocab_size=len(VOCAB))
    steps = 3
    needed = steps * mux.tokens_per_timestamp(num_dims, num_digits)
    result = model.generate(
        prompt, needed, np.random.default_rng(seed), constraint=constraint
    )
    rows = mux.demux(VOCAB.decode(result.tokens), num_dims, codec, row_offset=8)
    assert rows.shape == (steps, num_dims)

"""Unit and property tests for repro.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DataError
from repro.metrics import mae, mape, mase, nrmse, per_dimension_report, rmse, smape


class TestRmse:
    def test_perfect_forecast_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0

    def test_known_value(self):
        # errors (1, -1) -> sqrt((1 + 1) / 2) = 1
        assert rmse([1.0, 2.0], [2.0, 1.0]) == pytest.approx(1.0)

    def test_matches_paper_formula(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        yhat = rng.normal(size=50)
        expected = np.sqrt(np.sum((y - yhat) ** 2) / 50)
        assert rmse(y, yhat) == pytest.approx(expected)

    def test_2d_input_pools_all_entries(self):
        y = np.zeros((4, 2))
        yhat = np.ones((4, 2))
        assert rmse(y, yhat) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            rmse([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(DataError):
            rmse([], [])

    def test_nan_raises(self):
        with pytest.raises(DataError):
            rmse([np.nan], [1.0])

    def test_inf_prediction_raises(self):
        with pytest.raises(DataError):
            rmse([1.0], [np.inf])


class TestMae:
    def test_known_value(self):
        assert mae([0.0, 0.0], [3.0, -1.0]) == pytest.approx(2.0)

    def test_never_exceeds_rmse(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=100)
        yhat = rng.normal(size=100)
        assert mae(y, yhat) <= rmse(y, yhat) + 1e-12


class TestMape:
    def test_known_value(self):
        assert mape([10.0, 20.0], [11.0, 18.0]) == pytest.approx(10.0)

    def test_zero_actual_is_guarded(self):
        value = mape([0.0], [1.0])
        assert np.isfinite(value)


class TestSmape:
    def test_symmetric(self):
        assert smape([10.0], [12.0]) == pytest.approx(smape([12.0], [10.0]))

    def test_bounded_by_200(self):
        assert smape([1.0], [-1.0]) <= 200.0 + 1e-9


class TestNrmse:
    def test_scales_with_range(self):
        y = np.array([0.0, 10.0])
        yhat = np.array([1.0, 11.0])
        assert nrmse(y, yhat) == pytest.approx(0.1)

    def test_constant_actuals_raise(self):
        with pytest.raises(DataError):
            nrmse([5.0, 5.0], [4.0, 6.0])


class TestMase:
    def test_naive_forecast_scores_one_on_random_walk(self):
        rng = np.random.default_rng(2)
        train = np.cumsum(rng.normal(size=500))
        # In-sample naive error ~ test naive error for a random walk.
        y_true = train[1:]
        y_pred = train[:-1]
        assert mase(y_true, y_pred, train) == pytest.approx(1.0, rel=0.05)

    def test_multivariate_input_rejected(self):
        with pytest.raises(DataError):
            mase(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(10))

    def test_bad_seasonality_rejected(self):
        with pytest.raises(DataError):
            mase([1.0], [1.0], [1.0, 2.0], seasonality=0)

    def test_constant_train_rejected(self):
        with pytest.raises(DataError):
            mase([1.0], [1.0], np.ones(10))


class TestPerDimensionReport:
    def test_reports_every_dimension(self):
        y = np.array([[1.0, 10.0], [2.0, 20.0]])
        yhat = np.array([[1.0, 11.0], [2.0, 21.0]])
        report = per_dimension_report(y, yhat, ["a", "b"])
        assert report["a"]["rmse"] == pytest.approx(0.0)
        assert report["b"]["rmse"] == pytest.approx(1.0)
        assert set(report["a"]) == {"rmse", "mae", "smape"}

    def test_default_names(self):
        y = np.zeros((3, 2))
        report = per_dimension_report(y, y + 1.0)
        assert list(report) == ["dim_0", "dim_1"]

    def test_univariate_promoted(self):
        report = per_dimension_report(np.zeros(3), np.ones(3))
        assert report["dim_0"]["rmse"] == pytest.approx(1.0)

    def test_name_count_mismatch_raises(self):
        with pytest.raises(DataError):
            per_dimension_report(np.zeros((3, 2)), np.zeros((3, 2)), ["only_one"])


finite_series = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


@given(finite_series)
def test_rmse_identity_property(xs):
    assert rmse(xs, xs) == 0.0


@given(finite_series, st.floats(min_value=-100.0, max_value=100.0))
def test_rmse_of_constant_shift_property(xs, shift):
    y = np.asarray(xs)
    assert rmse(y, y + shift) == pytest.approx(abs(shift), abs=1e-6)


@given(finite_series, finite_series.map(lambda v: v))
def test_rmse_symmetry_property(xs, ys):
    n = min(len(xs), len(ys))
    a, b = np.asarray(xs[:n]), np.asarray(ys[:n])
    assert rmse(a, b) == pytest.approx(rmse(b, a))

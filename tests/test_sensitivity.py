"""Tests for the seed-sensitivity experiment driver."""

import pytest

from repro.exceptions import ConfigError
from repro.experiments.sensitivity import seed_sensitivity_table


class TestSeedSensitivity:
    def test_generation_variance_table(self):
        table = seed_sensitivity_table(
            "multicast-di", num_seeds=3, num_samples=2, vary="generation"
        )
        assert [row[0] for row in table.rows] == ["mean", "std", "min", "max"]
        for dim in ("GasRate", "CO2"):
            assert table.cell("min", dim) <= table.cell("mean", dim)
            assert table.cell("mean", dim) <= table.cell("max", dim)
            assert table.cell("std", dim) >= 0.0

    def test_dataset_variance_table(self):
        table = seed_sensitivity_table(
            "multicast-di", num_seeds=2, num_samples=2, vary="dataset"
        )
        assert table.cell("mean", "GasRate") > 0.0

    def test_deterministic_method_has_zero_generation_variance(self):
        table = seed_sensitivity_table("theta", num_seeds=3, vary="generation")
        assert table.cell("std", "GasRate") == pytest.approx(0.0, abs=1e-12)
        assert table.cell("std", "CO2") == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_method_still_varies_with_dataset(self):
        table = seed_sensitivity_table("theta", num_seeds=3, vary="dataset")
        assert table.cell("std", "GasRate") > 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            seed_sensitivity_table(num_seeds=1)
        with pytest.raises(ConfigError):
            seed_sensitivity_table(vary="phase")

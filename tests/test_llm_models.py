"""Unit and property tests for the language-model substrate (PPM, n-gram)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GenerationError
from repro.llm import NgramBackoffLM, PPMLanguageModel, UniformLM


def _distribution_checks(probs, vocab_size):
    assert probs.shape == (vocab_size,)
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs >= 0).all()


class TestPPM:
    def test_distribution_is_proper_on_empty_context(self):
        model = PPMLanguageModel(vocab_size=11)
        model.reset([])
        _distribution_checks(model.next_distribution(), 11)

    def test_learns_a_deterministic_cycle(self):
        # Pattern 0 1 2 0 1 2 ... — after seeing it, PPM should strongly
        # predict the next element of the cycle.
        model = PPMLanguageModel(vocab_size=5, max_order=4)
        model.reset([0, 1, 2] * 20)
        probs = model.next_distribution()
        assert probs[0] > 0.9

    def test_every_token_has_nonzero_probability(self):
        model = PPMLanguageModel(vocab_size=4, max_order=3)
        model.reset([0] * 50)
        probs = model.next_distribution()
        assert (probs > 0).all()

    def test_greedy_generation_continues_cycle(self):
        model = PPMLanguageModel(vocab_size=5, max_order=4)
        rng = np.random.default_rng(0)
        result = model.generate([0, 1, 2] * 15, 9, rng, temperature=0.0)
        assert result.tokens == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_higher_order_model_is_sharper_on_structured_data(self):
        # An ambiguous bigram context: "0 1" is followed by 2 and by 3
        # depending on what precedes; a deep model disambiguates.
        sequence = ([9, 0, 1, 2] * 10) + ([8, 0, 1, 3] * 10)
        shallow = PPMLanguageModel(vocab_size=10, max_order=1)
        deep = PPMLanguageModel(vocab_size=10, max_order=5)
        context = sequence + [9, 0, 1]
        shallow.reset(context)
        deep.reset(context)
        assert deep.next_distribution()[2] > shallow.next_distribution()[2]

    def test_log_probs_are_recorded(self):
        model = PPMLanguageModel(vocab_size=3, max_order=2)
        rng = np.random.default_rng(1)
        result = model.generate([0, 1] * 10, 5, rng)
        assert len(result.log_probs) == 5
        assert all(lp <= 0.0 for lp in result.log_probs)
        assert result.total_log_prob == pytest.approx(sum(result.log_probs))

    def test_sequence_nll_lower_for_predictable_continuation(self):
        model = PPMLanguageModel(vocab_size=5, max_order=4)
        context = [0, 1, 2] * 20
        expected = model.sequence_nll([0, 1, 2], context)
        model2 = PPMLanguageModel(vocab_size=5, max_order=4)
        surprising = model2.sequence_nll([4, 4, 4], context)
        assert expected.mean() < surprising.mean()

    def test_invalid_token_rejected(self):
        model = PPMLanguageModel(vocab_size=3)
        model.reset([])
        with pytest.raises(GenerationError):
            model.advance(3)

    def test_invalid_constructor_args(self):
        with pytest.raises(GenerationError):
            PPMLanguageModel(vocab_size=1)
        with pytest.raises(GenerationError):
            PPMLanguageModel(vocab_size=3, max_order=-1)
        with pytest.raises(GenerationError):
            PPMLanguageModel(vocab_size=3, uniform_floor=0.0)

    def test_incremental_equals_batch_reset(self):
        """advance() must produce the same state as reset() on the full context."""
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 4, size=60).tolist()
        incremental = PPMLanguageModel(vocab_size=4, max_order=3)
        incremental.reset(tokens[:30])
        for t in tokens[30:]:
            incremental.advance(t)
        batch = PPMLanguageModel(vocab_size=4, max_order=3)
        batch.reset(tokens)
        assert np.allclose(
            incremental.next_distribution(), batch.next_distribution()
        )


class TestNgram:
    def test_distribution_is_proper(self):
        model = NgramBackoffLM(vocab_size=7, order=3)
        model.reset([1, 2, 3, 4] * 5)
        _distribution_checks(model.next_distribution(), 7)

    def test_learns_repetition(self):
        model = NgramBackoffLM(vocab_size=5, order=3, alpha=0.1)
        model.reset([0, 1, 2] * 20)
        assert int(np.argmax(model.next_distribution())) == 0

    def test_order_zero_reduces_to_unigram(self):
        model = NgramBackoffLM(vocab_size=4, order=0, alpha=0.01)
        model.reset([2] * 100)
        probs = model.next_distribution()
        assert int(np.argmax(probs)) == 2
        assert probs[2] > 0.95

    def test_unseen_context_backs_off_smoothly(self):
        model = NgramBackoffLM(vocab_size=4, order=3)
        model.reset([0, 1] * 10 + [3, 3, 3])  # context (3,3,3) seen once
        probs = model.next_distribution()
        _distribution_checks(probs, 4)

    def test_invalid_args(self):
        with pytest.raises(GenerationError):
            NgramBackoffLM(vocab_size=4, order=-1)
        with pytest.raises(GenerationError):
            NgramBackoffLM(vocab_size=4, alpha=0.0)


class TestUniform:
    def test_ignores_context(self):
        model = UniformLM(vocab_size=5)
        model.reset([0, 0, 0, 0])
        assert np.allclose(model.next_distribution(), 0.2)

    def test_generate_respects_max_tokens(self):
        model = UniformLM(vocab_size=5)
        rng = np.random.default_rng(3)
        assert len(model.generate([], 12, rng)) == 12

    def test_zero_tokens(self):
        model = UniformLM(vocab_size=5)
        rng = np.random.default_rng(3)
        assert len(model.generate([0], 0, rng)) == 0

    def test_negative_max_tokens_raises(self):
        model = UniformLM(vocab_size=5)
        with pytest.raises(GenerationError):
            model.generate([], -1, np.random.default_rng(0))


token_lists = st.lists(st.integers(min_value=0, max_value=4), max_size=120)


@given(token_lists)
@settings(max_examples=50)
def test_ppm_distribution_proper_property(context):
    model = PPMLanguageModel(vocab_size=5, max_order=4)
    model.reset(context)
    probs = model.next_distribution()
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs > 0).all()


@given(token_lists)
@settings(max_examples=50)
def test_ngram_distribution_proper_property(context):
    model = NgramBackoffLM(vocab_size=5, order=3)
    model.reset(context)
    probs = model.next_distribution()
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs > 0).all()


@given(st.lists(st.integers(min_value=0, max_value=2), min_size=6, max_size=60))
@settings(max_examples=40)
def test_ppm_nll_finite_property(tokens):
    model = PPMLanguageModel(vocab_size=3, max_order=3)
    nll = model.sequence_nll(tokens[3:], context=tokens[:3])
    assert np.isfinite(nll).all()
    assert (nll >= 0).all()


# -- fork() semantics ---------------------------------------------------------

_FORK_CONTEXT = [0, 1, 2, 3, 1, 2, 0, 1, 2, 3, 3, 2, 1, 0] * 6


def _preset_models():
    from repro.llm import available_models, get_model

    return [get_model(name, vocab_size=5) for name in available_models()]


class TestFork:
    """fork() must be indistinguishable from a fresh reset — for every
    registered preset's underlying model — and strictly isolated."""

    @pytest.mark.parametrize(
        "llm", _preset_models(), ids=lambda llm: llm.name
    )
    def test_fork_matches_fresh_reset_distribution(self, llm):
        parent = llm.spec.factory(llm.vocab_size)
        parent.reset(_FORK_CONTEXT)
        fork = parent.fork()
        fresh = llm.spec.factory(llm.vocab_size)
        fresh.reset(_FORK_CONTEXT)
        np.testing.assert_array_equal(
            fork.next_distribution(), fresh.next_distribution()
        )

    @pytest.mark.parametrize(
        "llm", _preset_models(), ids=lambda llm: llm.name
    )
    def test_fork_decode_stream_is_bit_identical_to_generate(self, llm):
        parent = llm.spec.factory(llm.vocab_size)
        parent.reset(_FORK_CONTEXT)
        forked = parent.fork().decode(12, np.random.default_rng(7))
        fresh = llm.spec.factory(llm.vocab_size)
        full = fresh.generate(_FORK_CONTEXT, 12, np.random.default_rng(7))
        assert forked.tokens == full.tokens
        assert forked.log_probs == full.log_probs

    @pytest.mark.parametrize(
        "llm", _preset_models(), ids=lambda llm: llm.name
    )
    def test_mutating_the_fork_never_leaks_into_the_parent(self, llm):
        parent = llm.spec.factory(llm.vocab_size)
        parent.reset(_FORK_CONTEXT)
        before = parent.next_distribution().copy()
        fork = parent.fork()
        fork.decode(30, np.random.default_rng(3))
        for token in [4, 4, 4, 0, 0, 0]:
            fork.advance(token)
        np.testing.assert_array_equal(parent.next_distribution(), before)

    @pytest.mark.parametrize(
        "llm", _preset_models(), ids=lambda llm: llm.name
    )
    def test_mutating_the_parent_never_leaks_into_the_fork(self, llm):
        parent = llm.spec.factory(llm.vocab_size)
        parent.reset(_FORK_CONTEXT)
        fork = parent.fork()
        before = fork.next_distribution().copy()
        for token in [4, 0, 4, 0]:
            parent.advance(token)
        np.testing.assert_array_equal(fork.next_distribution(), before)

    def test_shiftbiased_fork_does_not_share_the_inner_model(self):
        from repro.llm import ShiftBiasedLM

        parent = ShiftBiasedLM(PPMLanguageModel(5, max_order=3))
        parent.reset(_FORK_CONTEXT)
        fork = parent.fork()
        assert fork.base is not parent.base
        assert fork.shift_weight == parent.shift_weight
        assert fork.shift_steps == parent.shift_steps

    def test_ctw_fork_does_not_share_nodes(self):
        from repro.llm import CTWLanguageModel

        parent = CTWLanguageModel(5, depth=4)
        parent.reset(_FORK_CONTEXT)
        fork = parent.fork()
        assert fork._root is not parent._root
        assert not (
            set(id(n) for n in fork._nodes.values())
            & set(id(n) for n in parent._nodes.values())
        )

    def test_subclasses_fall_back_to_deepcopy_and_keep_their_type(self):
        class Tagged(PPMLanguageModel):
            tag = "subclass-state"

        parent = Tagged(5, max_order=3)
        parent.reset(_FORK_CONTEXT)
        fork = parent.fork()
        assert type(fork) is Tagged and fork.tag == "subclass-state"
        np.testing.assert_array_equal(
            fork.next_distribution(), parent.next_distribution()
        )

"""Tests for the VAR and GRU extension baselines."""

import numpy as np
import pytest

from repro.baselines import VAR, GRUForecaster, GRUNetwork, auto_var
from repro.data import electricity, synthetic_multivariate
from repro.evaluation import evaluate_method
from repro.exceptions import FittingError
from repro.metrics import rmse


def _simulate_var1(A, n=3000, seed=0, c=None):
    rng = np.random.default_rng(seed)
    d = A.shape[0]
    c = np.zeros(d) if c is None else c
    y = np.zeros((n, d))
    for t in range(1, n):
        y[t] = c + A @ y[t - 1] + rng.normal(0, 1, d)
    return y


class TestVarEstimation:
    A = np.array([[0.5, 0.2], [-0.1, 0.6]])

    def test_recovers_var1_coefficients(self):
        y = _simulate_var1(self.A, n=5000, seed=1)
        model = VAR(order=1).fit(y)
        assert np.allclose(model.params["A"][0], self.A, atol=0.05)

    def test_recovers_intercept(self):
        y = _simulate_var1(self.A, n=5000, seed=2, c=np.array([1.0, -0.5]))
        model = VAR(order=1).fit(y)
        assert np.allclose(model.params["c"], [1.0, -0.5], atol=0.15)

    def test_residual_covariance_near_identity(self):
        y = _simulate_var1(self.A, n=8000, seed=3)
        model = VAR(order=1).fit(y)
        assert np.allclose(model.params["sigma"], np.eye(2), atol=0.1)

    def test_higher_order_fits(self):
        y = _simulate_var1(self.A, n=1000, seed=4)
        model = VAR(order=3).fit(y)
        assert model.params["A"].shape == (3, 2, 2)

    def test_univariate_input_promoted(self):
        rng = np.random.default_rng(5)
        x = np.zeros(500)
        for t in range(1, 500):
            x[t] = 0.7 * x[t - 1] + rng.normal()
        model = VAR(order=1).fit(x)
        assert model.params["A"][0][0, 0] == pytest.approx(0.7, abs=0.08)

    def test_validation(self):
        with pytest.raises(FittingError):
            VAR(order=0)
        with pytest.raises(FittingError):
            VAR(order=1).fit(np.full((30, 2), np.nan))
        with pytest.raises(FittingError):
            VAR(order=5).fit(np.zeros((12, 3)))
        with pytest.raises(FittingError):
            VAR(order=1).forecast(3)


class TestVarForecasting:
    def test_forecast_shape_and_stability(self):
        y = _simulate_var1(np.array([[0.5, 0.2], [-0.1, 0.6]]), n=800, seed=6)
        forecast = VAR(order=1).fit(y).forecast(50)
        assert forecast.shape == (50, 2)
        # Stable VAR forecasts decay toward the process mean (~0).
        assert np.abs(forecast[-1]).max() < np.abs(forecast[0]).max() + 0.5

    def test_exploits_cross_dimensional_signal(self):
        """Dimension 1 is driven by lag-2 dimension 0: within that lag the
        driver's future is already observed, so VAR must beat a univariate
        AR at short horizons (averaged over rolling windows for stability).
        """
        from repro.baselines import ARIMA

        rng = np.random.default_rng(7)
        n = 1400
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.9 * x[t - 1] + rng.normal()
        y = np.zeros(n)
        for t in range(2, n):
            y[t] = 0.8 * x[t - 2] + 0.3 * rng.normal()
        data = np.stack([x, y], axis=1)

        horizon = 2
        var_errors, ar_errors = [], []
        for origin in range(1200, 1400 - horizon, 20):
            train, test = data[:origin], data[origin : origin + horizon]
            var_forecast = VAR(order=3).fit(train).forecast(horizon)
            ar_forecast = ARIMA(order=(3, 0, 0)).fit(train[:, 1]).forecast(horizon)
            var_errors.append(rmse(test[:, 1], var_forecast[:, 1]))
            ar_errors.append(rmse(test[:, 1], ar_forecast))
        assert np.mean(var_errors) < 0.85 * np.mean(ar_errors)

    def test_bad_horizon_rejected(self):
        y = _simulate_var1(np.array([[0.5, 0.0], [0.0, 0.5]]), n=200)
        model = VAR(order=1).fit(y)
        with pytest.raises(FittingError):
            model.forecast(0)


class TestAutoVar:
    def test_selects_reasonable_order(self):
        y = _simulate_var1(np.array([[0.6, 0.1], [0.0, 0.5]]), n=800, seed=8)
        model = auto_var(y, max_order=4)
        assert 1 <= model.order <= 4

    def test_aic_minimal_among_candidates(self):
        y = _simulate_var1(np.array([[0.6, 0.1], [0.0, 0.5]]), n=500, seed=9)
        best = auto_var(y, max_order=3)
        for p in (1, 2, 3):
            assert best.aic <= VAR(order=p).fit(y).aic + 1e-9

    def test_registered_in_harness(self):
        result = evaluate_method("var", electricity())
        assert set(result.rmse_per_dim) == {"HUFL", "HULL", "OT"}

    def test_validation(self):
        with pytest.raises(FittingError):
            auto_var(np.zeros((100, 2)), max_order=0)


class TestGruNetwork:
    def test_forward_shapes(self):
        net = GRUNetwork(input_size=3, hidden_size=5, output_size=3, seed=0)
        windows = np.random.default_rng(0).normal(size=(4, 6, 3))
        predictions, cache = net.forward(windows)
        assert predictions.shape == (4, 3)
        assert cache["time"] == 6

    def test_gradient_check(self):
        rng = np.random.default_rng(42)
        net = GRUNetwork(input_size=2, hidden_size=3, output_size=2, seed=7)
        windows = rng.normal(size=(4, 5, 2))
        targets = rng.normal(size=(4, 2))

        def loss_and_grads():
            predictions, cache = net.forward(windows)
            error = predictions - targets
            return float((error**2).sum()), net.backward(2.0 * error, cache)

        _, analytic = loss_and_grads()
        epsilon = 1e-6
        for name, param in net.params.items():
            flat = param.ravel()
            for idx in rng.choice(flat.size, size=min(10, flat.size), replace=False):
                original = flat[idx]
                flat[idx] = original + epsilon
                loss_plus, _ = loss_and_grads()
                flat[idx] = original - epsilon
                loss_minus, _ = loss_and_grads()
                flat[idx] = original
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                assert analytic[name].ravel()[idx] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), f"{name}[{idx}]"

    def test_wrong_input_size_rejected(self):
        net = GRUNetwork(input_size=2, hidden_size=4, output_size=1)
        with pytest.raises(FittingError):
            net.forward(np.zeros((1, 3, 5)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(FittingError):
            GRUNetwork(input_size=0, hidden_size=4, output_size=1)


class TestGruForecaster:
    def test_learns_a_sine(self):
        t = np.arange(200.0)
        series = np.sin(2 * np.pi * t / 20.0)[:, None]
        model = GRUForecaster(
            window=20, hidden_size=16, epochs=40, learning_rate=5e-3, seed=0
        ).fit(series[:180])
        assert rmse(series[180:], model.forecast(20)) < 0.3

    def test_loss_decreases(self):
        series = synthetic_multivariate(n=120, num_dims=2, seed=0).values
        model = GRUForecaster(window=8, hidden_size=12, epochs=10, seed=0).fit(series)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_multivariate_shapes(self):
        series = synthetic_multivariate(n=80, num_dims=3, seed=1).values
        model = GRUForecaster(window=6, hidden_size=8, epochs=2, seed=0).fit(series)
        assert model.forecast(5).shape == (5, 3)

    def test_deterministic_for_seed(self):
        series = np.sin(np.arange(60.0) / 4.0)[:, None]
        a = GRUForecaster(window=5, hidden_size=8, epochs=3, seed=5).fit(series)
        b = GRUForecaster(window=5, hidden_size=8, epochs=3, seed=5).fit(series)
        assert np.allclose(a.forecast(4), b.forecast(4))

    def test_registered_in_harness(self):
        dataset = synthetic_multivariate(n=90, num_dims=2, seed=2)
        result = evaluate_method(
            "gru", dataset, window=6, hidden_size=8, epochs=2
        )
        assert set(result.rmse_per_dim) == {"x0", "x1"}

    def test_validation(self):
        with pytest.raises(FittingError):
            GRUForecaster(window=0)
        with pytest.raises(FittingError):
            GRUForecaster().forecast(3)
        with pytest.raises(FittingError):
            GRUForecaster(window=50).fit(np.zeros((20, 1)))

"""Tests for the repro.fuzz harness: generators, properties, shrinker, CLI.

The ``TestPinnedCounterexamples`` class replays the shrunk counterexamples
the harness found against the pre-PR-4 pipeline (NaN codes from degenerate
spans, overflowing scaler statistics, biased demux padding); each must now
pass its property family cleanly.
"""

import json

import numpy as np
import pytest

from repro.fuzz import (
    CODECS,
    FAMILIES,
    SCALERS,
    Counterexample,
    FuzzCase,
    check_case,
    generate_case,
    run_fuzz,
    shrink_case,
)
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.shrinker import case_size


def _case(**overrides) -> FuzzCase:
    base = dict(
        family="round_trip",
        scheme="vi",
        codec="digit",
        scaler="fixed",
        num_digits=2,
        alphabet_size=4,
        segment_length=1,
        corruption="none",
        cut=0.5,
        seed=11,
        values=[[1.0, 2.0], [3.0, 4.0]],
    )
    base.update(overrides)
    return FuzzCase(**base)


class TestGenerators:
    def test_same_seed_same_cases(self):
        a = [generate_case(np.random.default_rng((9, i))) for i in range(25)]
        b = [generate_case(np.random.default_rng((9, i))) for i in range(25)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [generate_case(np.random.default_rng((0, i))) for i in range(10)]
        b = [generate_case(np.random.default_rng((1, i))) for i in range(10)]
        assert a != b

    def test_generated_cases_are_well_formed(self):
        for i in range(50):
            case = generate_case(np.random.default_rng((3, i)))
            assert case.family in FAMILIES
            assert case.codec in CODECS
            assert case.scaler in SCALERS
            assert case.num_steps >= 1 and case.num_dims >= 1
            assert len(case.values) == case.num_steps
            assert all(len(row) == case.num_dims for row in case.values)

    def test_family_pinning(self):
        rng = np.random.default_rng(0)
        case = generate_case(rng, family="mux_identity")
        assert case.family == "mux_identity"
        with pytest.raises(ValueError):
            generate_case(rng, family="nonsense")

    def test_json_round_trip(self):
        case = _case(values=[[1e300, -5e-324]])
        assert FuzzCase.from_json(case.to_json()) == case

    def test_describe_mentions_the_knobs(self):
        text = _case().describe()
        assert "round_trip" in text and "vi" in text and "d=2" in text


class TestRunFuzz:
    def test_clean_run_has_no_counterexamples(self):
        report = run_fuzz(num_cases=120, seed=0)
        assert report.ok
        assert report.cases_run == 120
        assert sum(report.checked_per_family.values()) == 120
        assert set(report.checked_per_family) == set(FAMILIES)

    def test_family_filter(self):
        report = run_fuzz(num_cases=30, seed=1, families=("mux_identity",))
        assert report.checked_per_family == {"mux_identity": 30}
        with pytest.raises(ValueError):
            run_fuzz(num_cases=5, families=("bogus",))
        with pytest.raises(ValueError):
            run_fuzz(num_cases=0)

    def test_failures_are_shrunk_and_written(self, tmp_path, monkeypatch):
        import repro.fuzz.harness as harness

        def planted(case):
            return "planted failure" if case.num_steps > 1 else None

        monkeypatch.setattr(harness, "check_case", planted)
        report = run_fuzz(num_cases=12, seed=0, out_dir=tmp_path)
        assert not report.ok
        for ce in report.failures:
            assert ce.failure == "planted failure"
            # Shrinking under the planted oracle stops at two timestamps.
            assert ce.shrunk.num_steps == 2
        assert report.repro_files
        payload = json.loads((tmp_path / report.repro_files[0].split("/")[-1]).read_text())
        assert payload["failure"] == "planted failure"
        assert FuzzCase(**payload["shrunk"]).num_steps == 2

    def test_summary_reports_counts(self):
        report = run_fuzz(num_cases=9, seed=2)
        text = report.summary()
        assert "9 cases" in text and "OK" in text


class TestShrinker:
    def test_shrinks_rows_and_dims_to_minimum(self):
        case = _case(
            values=[[float(i + 10 * k) for k in range(6)] for i in range(16)]
        )
        shrunk = shrink_case(case, lambda c: "fail")
        assert shrunk.num_steps == 1 and shrunk.num_dims == 1
        assert shrunk.values == [[0.0]]
        assert shrunk.corruption == "none"

    def test_respects_the_oracle(self):
        # Failure requires >= 3 dims: the shrinker must not go below that.
        case = _case(values=[[1.0, 2.0, 3.0, 4.0]])

        def oracle(c):
            return "fail" if c.num_dims >= 3 else None

        assert shrink_case(case, oracle).num_dims == 3

    def test_shrunk_case_is_never_larger(self):
        case = _case(values=[[5.5, -7.25]] * 8)
        shrunk = shrink_case(case, lambda c: "fail")
        assert case_size(shrunk) <= case_size(case)

    def test_deterministic(self):
        case = _case(values=[[3.0, 1.0], [2.0, 9.0]])

        def oracle(c):
            return "fail" if c.num_steps == 2 else None

        assert shrink_case(case, oracle) == shrink_case(case, oracle)


class TestPinnedCounterexamples:
    """Shrunk cases the harness found against the pre-fix pipeline."""

    def test_fixed_scaler_constant_at_huge_magnitude(self):
        # Was: 0.5-widening absorbed at 1e300 -> zero span -> NaN codes.
        case = _case(scaler="fixed", num_digits=1, values=[[1e300]])
        assert check_case(case) is None

    def test_minmax_constant_at_huge_magnitude(self):
        # Was: lo + 1.0 == lo -> zero span -> non-finite transform.
        case = _case(scaler="minmax", values=[[-3.3333333333333335e299]])
        assert check_case(case) is None

    def test_zscore_huge_spread_refuses_cleanly(self):
        # Was: std overflowed to inf, inverse produced NaN.
        case = _case(scaler="zscore", values=[[0.0], [1.5e308]])
        assert check_case(case) is None

    def test_sax_zscore_overflow_refuses_cleanly(self):
        # Was: SAX decode emitted non-finite values through the overflowed
        # z-normalisation instead of raising.
        case = _case(
            scheme="bi",
            codec="sax-digital",
            scaler="zscore",
            alphabet_size=2,
            values=[[0.0], [-1.5e308]],
        )
        assert check_case(case) is None

    def test_fixed_half_step_rounding_is_within_resolution(self):
        # Was an oracle bug: the exact half-step error at a banker's-rounding
        # boundary exceeded resolution/2 by one ulp of the span.
        case = _case(scaler="fixed", num_digits=1, values=[[0.0]])
        assert check_case(case) is None

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc", "bi"])
    def test_mux_identity_with_truncation(self, scheme):
        case = _case(
            family="mux_identity",
            scheme=scheme,
            corruption="truncate",
            cut=0.7,
            values=[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
        )
        assert check_case(case) is None

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc", "bi"])
    def test_constraint_soundness_all_schemes(self, scheme):
        case = _case(family="constraint_soundness", scheme=scheme, seed=77)
        assert check_case(case) is None

    def test_counterexample_payload_embeds_both_cases(self):
        ce = Counterexample(
            index=3, failure="boom", case=_case(), shrunk=_case(values=[[0.0]])
        )
        payload = json.loads(ce.to_json())
        assert payload["index"] == 3
        assert FuzzCase(**payload["original"]) == _case()


class TestCli:
    def test_cli_clean_run_exits_zero(self, tmp_path, capsys):
        code = fuzz_main(
            ["--cases", "45", "--seed", "0", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "45 cases" in out and "OK" in out
        assert not list(tmp_path.iterdir())  # no repro files on success

    def test_cli_family_filter_and_no_shrink(self, tmp_path, capsys):
        code = fuzz_main(
            [
                "--cases", "10", "--seed", "3",
                "--family", "round_trip",
                "--out", str(tmp_path),
                "--no-shrink",
            ]
        )
        assert code == 0
        assert "round_trip             10 cases" in capsys.readouterr().out

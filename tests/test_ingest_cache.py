"""Shared-prefix ingest caching: cache semantics, bit-identity, wiring.

Three layers are covered:

* :class:`~repro.llm.state_cache.IngestStateCache` unit behaviour —
  fork / extend / miss resolution, LRU-by-token eviction, thread safety,
  and the ``max_tokens=0`` disabled mode;
* the regression that matters most: with a fixed seed, forecasts are
  **bit-identical** with and without ingest caching (and with and without
  shared prefill), across multiplexing schemes and both raw/SAX paths;
* wiring: engine counters and ledger field, and the rolling-origin
  backtest's incremental prompt extension.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.data import Dataset
from repro.evaluation import rolling_origin_evaluation
from repro.exceptions import ConfigError, GenerationError
from repro.llm import (
    IngestStateCache,
    PPMLanguageModel,
    get_model,
)

RNG = np.random.default_rng(42)
# Extremes pinned at the very start so every backtest window's scaler fit
# is identical and later prompts are strict extensions of earlier ones.
HISTORY = np.column_stack(
    [
        np.concatenate(([5.0, -5.0], np.sin(np.arange(58) / 3.0))),
        np.concatenate(([4.0, -4.0], np.cos(np.arange(58) / 4.0))),
    ]
) + 0.05 * RNG.standard_normal((60, 2))
HISTORY[0] = [6.0, 5.0]
HISTORY[1] = [-6.0, -5.0]


def _prefilled(tokens, vocab_size=5):
    model = PPMLanguageModel(vocab_size, max_order=4)
    model.reset(tokens)
    return model


class TestIngestStateCache:
    def test_miss_then_exact_hit_forks(self):
        cache = IngestStateCache()
        prompt = [0, 1, 2, 3] * 5
        lookup = cache.get("m", 5, prompt)
        assert lookup.outcome == "miss" and lookup.model is None
        cache.put("m", 5, prompt, _prefilled(prompt))
        hit = cache.get("m", 5, prompt)
        assert hit.outcome == "fork"
        assert hit.matched == len(prompt)
        np.testing.assert_array_equal(
            hit.model.next_distribution(),
            _prefilled(prompt).next_distribution(),
        )

    def test_strict_prefix_extends_with_private_fork(self):
        cache = IngestStateCache()
        prefix = [0, 1, 2, 3] * 5
        cached = _prefilled(prefix)
        cache.put("m", 5, prefix, cached)
        longer = prefix + [1, 2, 3, 0]
        lookup = cache.get("m", 5, longer)
        assert lookup.outcome == "extend"
        assert lookup.matched == len(prefix)
        assert lookup.model is not cached  # a private fork, safe to advance
        for token in longer[lookup.matched :]:
            lookup.model.advance(token)
        np.testing.assert_array_equal(
            lookup.model.next_distribution(),
            _prefilled(longer).next_distribution(),
        )

    def test_longest_prefix_wins(self):
        cache = IngestStateCache()
        short, long = [0, 1] * 3, [0, 1] * 6
        cache.put("m", 5, short, _prefilled(short))
        cache.put("m", 5, long, _prefilled(long))
        lookup = cache.get("m", 5, [0, 1] * 9)
        assert lookup.outcome == "extend" and lookup.matched == len(long)

    def test_namespaced_by_model_and_vocab(self):
        cache = IngestStateCache()
        prompt = [0, 1, 2] * 4
        cache.put("m", 5, prompt, _prefilled(prompt))
        assert cache.get("other", 5, prompt).outcome == "miss"
        assert cache.get("m", 7, prompt).outcome == "miss"
        assert cache.get("m", 5, prompt).outcome == "fork"

    def test_identical_prompt_is_not_an_extend(self):
        cache = IngestStateCache()
        prompt = [0, 1, 2] * 4
        cache.put("m", 5, prompt, _prefilled(prompt))
        # Equal length is not a *strict* prefix: resolves as exact hit only.
        assert cache.get("m", 5, list(prompt)).outcome == "fork"

    def test_lru_eviction_by_token_count(self):
        cache = IngestStateCache(max_tokens=25)
        a, b, c = [0] * 10, [1] * 10, [2] * 10
        cache.put("m", 5, a, _prefilled(a))
        cache.put("m", 5, b, _prefilled(b))
        assert cache.get("m", 5, a).outcome == "fork"  # refresh a
        cache.put("m", 5, c, _prefilled(c))  # 30 > 25: evicts LRU = b
        assert cache.get("m", 5, b).outcome == "miss"
        assert cache.get("m", 5, a).outcome == "fork"
        assert cache.get("m", 5, c).outcome == "fork"
        assert cache.stats["evictions"] == 1
        assert cache.stats["total_tokens"] == 20

    def test_oversized_prompt_is_not_cached(self):
        cache = IngestStateCache(max_tokens=5)
        prompt = [0] * 10
        cache.put("m", 5, prompt, _prefilled(prompt))
        assert len(cache) == 0

    def test_disabled_cache_is_a_no_op(self):
        cache = IngestStateCache(max_tokens=0)
        assert not cache.enabled
        prompt = [0, 1] * 4
        cache.put("m", 5, prompt, _prefilled(prompt))
        assert cache.get("m", 5, prompt).outcome == "miss"
        assert len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError, match="max_tokens"):
            IngestStateCache(max_tokens=-1)

    def test_stats_track_hits_extends_misses_and_savings(self):
        cache = IngestStateCache()
        prompt = [0, 1, 2, 3] * 3
        cache.get("m", 5, prompt)
        cache.put("m", 5, prompt, _prefilled(prompt))
        cache.get("m", 5, prompt)
        cache.get("m", 5, prompt + [0, 1])
        stats = cache.stats
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["extends"] == 1
        assert stats["tokens_saved"] == 2 * len(prompt)
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_clear_drops_entries_keeps_stats(self):
        cache = IngestStateCache()
        prompt = [0, 1] * 4
        cache.put("m", 5, prompt, _prefilled(prompt))
        cache.get("m", 5, prompt)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["hits"] == 1
        assert cache.get("m", 5, prompt).outcome == "miss"

    def test_concurrent_forks_of_a_shared_entry_are_safe(self):
        cache = IngestStateCache()
        prompt = [0, 1, 2, 3, 2, 1] * 8
        cache.put("m", 5, prompt, _prefilled(prompt))
        expected = _prefilled(prompt).next_distribution()
        errors = []

        def worker(seed):
            try:
                for _ in range(10):
                    lookup = cache.get("m", 5, prompt)
                    fork = lookup.model.fork()
                    fork.decode(8, np.random.default_rng(seed))
                    np.testing.assert_array_equal(
                        lookup.model.next_distribution(), expected
                    )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        np.testing.assert_array_equal(
            cache.get("m", 5, prompt).model.next_distribution(), expected
        )


class TestSimulatedPrefill:
    def test_prefill_generate_matches_plain_generate(self):
        llm = get_model("llama2-7b-sim", vocab_size=11)
        prompt = [0, 1, 2, 10, 3, 4, 5, 10] * 6
        session = llm.prefill(prompt)
        assert session.outcome == "miss"
        assert session.ingested_tokens == len(prompt)
        a = llm.generate(prompt, 8, np.random.default_rng(5), session=session)
        b = llm.generate(prompt, 8, np.random.default_rng(5))
        assert a.tokens == b.tokens and a.log_probs == b.log_probs

    def test_prefill_uses_and_feeds_the_cache(self):
        cache = IngestStateCache()
        llm = get_model("llama2-7b-sim", vocab_size=11, state_cache=cache)
        prompt = [0, 1, 2, 10] * 8
        assert llm.prefill(prompt).outcome == "miss"
        again = llm.prefill(prompt)
        assert again.outcome == "fork" and again.ingested_tokens == 0
        extended = llm.prefill(prompt + [3, 4, 5, 10])
        assert extended.outcome == "extend"
        assert extended.ingested_tokens == 4
        # The extended state was re-deposited: an exact repeat now forks it.
        assert llm.prefill(prompt + [3, 4, 5, 10]).outcome == "fork"

    def test_session_context_mismatch_is_an_error(self):
        llm = get_model("llama2-7b-sim", vocab_size=11)
        session = llm.prefill([0, 1, 2, 10])
        with pytest.raises(GenerationError, match="session"):
            llm.generate([0, 1, 2, 3], 4, np.random.default_rng(0), session=session)


def _forecast(config, state_cache=None, share_prefill=True):
    forecaster = MultiCastForecaster(
        state_cache=state_cache, share_prefill=share_prefill
    )
    spec = ForecastSpec.from_config(config, series=HISTORY, horizon=5)
    return forecaster.forecast(spec)


class TestBitIdentity:
    """The tentpole regression: caching must never change a single bit."""

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    @pytest.mark.parametrize("sax", [None, SaxConfig()], ids=["raw", "sax"])
    def test_cached_and_uncached_forecasts_are_bit_identical(self, scheme, sax):
        config = MultiCastConfig(scheme=scheme, sax=sax, num_samples=3, seed=123)
        baseline = _forecast(config, share_prefill=False)  # legacy per-draw path
        shared = _forecast(config)  # shared prefill, no cache
        cache = IngestStateCache()
        cold = _forecast(config, state_cache=cache)  # cache miss
        warm = _forecast(config, state_cache=cache)  # cache fork
        assert cold.metadata["ingest"] == "miss"
        assert warm.metadata["ingest"] == "fork"
        for output in (shared, cold, warm):
            assert output.values.tobytes() == baseline.values.tobytes()
            assert output.samples.tobytes() == baseline.samples.tobytes()
            assert output.prompt_tokens == baseline.prompt_tokens
            assert output.generated_tokens == baseline.generated_tokens
            assert output.simulated_seconds == baseline.simulated_seconds

    def test_extended_history_is_bit_identical_too(self):
        config = MultiCastConfig(scheme="di", num_samples=2, seed=7)
        cache = IngestStateCache()
        forecaster = MultiCastForecaster(state_cache=cache)
        forecaster.forecast(ForecastSpec.from_config(config, series=HISTORY[:50], horizon=4))
        extended = forecaster.forecast(
            ForecastSpec.from_config(config, series=HISTORY[:55], horizon=4)
        )
        assert extended.metadata["ingest"] == "extend"
        baseline = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=HISTORY[:55], horizon=4)
        )
        assert extended.values.tobytes() == baseline.values.tobytes()
        assert extended.samples.tobytes() == baseline.samples.tobytes()

    def test_simulated_seconds_charge_ingest_once(self):
        config = MultiCastConfig(scheme="di", num_samples=4, seed=0)
        output = _forecast(config)
        llm = get_model(config.model, vocab_size=11)
        per_sample = output.generated_tokens // 4
        expected = llm.cost.seconds(output.prompt_tokens, 0) + 4 * llm.cost.seconds(
            0, per_sample
        )
        assert output.simulated_seconds == pytest.approx(expected)


class TestEngineWiring:
    def test_engine_counts_ingest_outcomes_and_ledger_records_them(self, tmp_path):
        from repro.serving import ForecastCache, ForecastEngine, ForecastRequest

        ledger_path = tmp_path / "ledger.jsonl"
        config = MultiCastConfig(num_samples=2, seed=0)
        with ForecastEngine(
            num_workers=2,
            cache=ForecastCache(max_entries=0),  # isolate the ingest cache
            ledger=str(ledger_path),
        ) as engine:
            engine.forecast(ForecastRequest(HISTORY, 4, config=config))
            # Same prompt, different seed: result cache can't help, the
            # ingest cache can.
            second = MultiCastConfig(num_samples=2, seed=1)
            engine.forecast(ForecastRequest(HISTORY, 4, config=second))
            assert engine.metrics.counter("ingest_cache_misses").value == 1
            assert engine.metrics.counter("ingest_cache_hits").value == 1
            snapshot = engine.metrics_snapshot()
        assert snapshot["ingest_cache"]["hits"] == 1
        assert snapshot["ingest_cache"]["misses"] == 1
        from repro.observability import read_ledger

        records = read_ledger(str(ledger_path))
        assert [r["ingest"] for r in records] == ["miss", "fork"]

    def test_disabled_ingest_cache_still_serves(self):
        from repro.serving import ForecastEngine, ForecastRequest

        config = MultiCastConfig(num_samples=2, seed=0)
        with ForecastEngine(
            num_workers=2, ingest_cache=IngestStateCache(max_tokens=0)
        ) as engine:
            response = engine.forecast(ForecastRequest(HISTORY, 4, config=config))
        assert response.ok
        assert response.output.metadata["ingest"] == "miss"


class TestBacktestExtension:
    def test_rolling_origin_extends_instead_of_reingesting(self):
        dataset = Dataset(name="synthetic", values=HISTORY, dim_names=("a", "b"))
        cache = IngestStateCache()
        spec = ForecastSpec(num_samples=2)
        uncached = rolling_origin_evaluation(
            "multicast-di", dataset, horizon=4, num_windows=3, spec=spec
        )
        cached = rolling_origin_evaluation(
            "multicast-di",
            dataset,
            horizon=4,
            num_windows=3,
            spec=spec,
            state_cache=cache,
        )
        assert cached.window_rmse == uncached.window_rmse
        stats = cache.stats
        # Window 1 misses; windows 2 and 3 extend the previous prompt.
        assert stats["misses"] == 1
        assert stats["extends"] == 2
        assert stats["tokens_saved"] > 0


class TestIngestCheckpoints:
    """Shorter-query-after-longer-deposit: the checkpoint regression."""

    def test_checkpoint_lengths_double_below_n(self):
        from repro.llm.state_cache import checkpoint_lengths

        assert checkpoint_lengths(0) == ()
        assert checkpoint_lengths(16) == ()
        assert checkpoint_lengths(17) == (16,)
        assert checkpoint_lengths(200) == (16, 32, 64, 128)

    def test_shorter_query_after_longer_deposit_extends(self):
        cache = IngestStateCache()
        prompt = [int(t) for t in RNG.integers(0, 5, size=150)]
        model = PPMLanguageModel(5, max_order=4)
        cache.ingest("m", 5, prompt, model)
        # Previously this query missed outright: only the 150-token end
        # state was cached, and in-context state cannot be rewound.
        lookup = cache.get("m", 5, prompt[:100])
        assert lookup.outcome == "extend"
        assert lookup.matched == 64  # longest checkpoint at or below 100
        for token in prompt[lookup.matched : 100]:
            lookup.model.advance(token)
        np.testing.assert_array_equal(
            lookup.model.next_distribution(),
            _prefilled(prompt[:100]).next_distribution(),
        )

    def test_exact_checkpoint_query_forks(self):
        cache = IngestStateCache()
        prompt = [int(t) for t in RNG.integers(0, 5, size=70)]
        cache.ingest("m", 5, prompt, PPMLanguageModel(5, max_order=4))
        assert cache.get("m", 5, prompt[:32]).outcome == "fork"
        assert cache.get("m", 5, prompt).outcome == "fork"

    def test_ingest_matches_plain_reset_bitwise(self):
        cache = IngestStateCache()
        prompt = [int(t) for t in RNG.integers(0, 5, size=90)]
        model = cache.ingest("m", 5, prompt, PPMLanguageModel(5, max_order=4))
        np.testing.assert_array_equal(
            model.next_distribution(), _prefilled(prompt).next_distribution()
        )

    def test_disabled_cache_ingest_still_resets(self):
        cache = IngestStateCache(max_tokens=0)
        prompt = [0, 1, 2, 3] * 10
        model = cache.ingest("m", 5, prompt, PPMLanguageModel(5, max_order=4))
        assert len(cache) == 0
        np.testing.assert_array_equal(
            model.next_distribution(), _prefilled(prompt).next_distribution()
        )

    def test_prefill_then_shorter_prefill_reuses_checkpoint(self):
        cache = IngestStateCache()
        llm = get_model("llama2-7b-sim", vocab_size=5, state_cache=cache)
        prompt = [int(t) for t in RNG.integers(0, 5, size=120)]
        assert llm.prefill(prompt).outcome == "miss"
        shorter = llm.prefill(prompt[:90])
        assert shorter.outcome == "extend"
        assert shorter.ingested_tokens == 90 - 64
        fresh = get_model("llama2-7b-sim", vocab_size=5).prefill(prompt[:90])
        np.testing.assert_array_equal(
            shorter.model.next_distribution(),
            fresh.model.next_distribution(),
        )

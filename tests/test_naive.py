"""Tests for the naive reference forecasters."""

import numpy as np
import pytest

from repro.baselines import drift_forecast, naive_forecast, seasonal_naive_forecast
from repro.exceptions import DataError


class TestNaive:
    def test_repeats_last_row(self):
        history = np.array([[1.0, 10.0], [2.0, 20.0]])
        forecast = naive_forecast(history, 3)
        assert forecast.shape == (3, 2)
        assert np.allclose(forecast, [2.0, 20.0])

    def test_univariate_promoted(self):
        forecast = naive_forecast(np.array([1.0, 5.0]), 2)
        assert forecast.shape == (2, 1)

    def test_bad_horizon(self):
        with pytest.raises(DataError):
            naive_forecast(np.ones((3, 1)), 0)


class TestSeasonalNaive:
    def test_repeats_season(self):
        history = np.arange(8.0)[:, None]  # last season of 4: [4,5,6,7]
        forecast = seasonal_naive_forecast(history, horizon=6, period=4)
        assert forecast[:, 0].tolist() == [4.0, 5.0, 6.0, 7.0, 4.0, 5.0]

    def test_period_one_equals_naive(self):
        history = np.array([[3.0], [9.0]])
        assert np.allclose(
            seasonal_naive_forecast(history, 4, period=1),
            naive_forecast(history, 4),
        )

    def test_period_validated(self):
        with pytest.raises(DataError):
            seasonal_naive_forecast(np.ones((5, 1)), 3, period=6)
        with pytest.raises(DataError):
            seasonal_naive_forecast(np.ones((5, 1)), 3, period=0)

    def test_exact_on_perfectly_periodic_series(self):
        t = np.arange(40)
        series = np.sin(2 * np.pi * t / 8.0)[:, None]
        forecast = seasonal_naive_forecast(series[:32], 8, period=8)
        assert np.allclose(forecast, series[32:], atol=1e-12)


class TestDrift:
    def test_extrapolates_linear_trend_exactly(self):
        history = (2.0 * np.arange(10.0) + 1.0)[:, None]
        forecast = drift_forecast(history, 3)
        assert np.allclose(forecast[:, 0], [21.0, 23.0, 25.0])

    def test_needs_two_points(self):
        with pytest.raises(DataError):
            drift_forecast(np.ones((1, 1)), 2)

    def test_multivariate_slopes_independent(self):
        history = np.stack([np.arange(5.0), -2.0 * np.arange(5.0)], axis=1)
        forecast = drift_forecast(history, 2)
        assert np.allclose(forecast[:, 0], [5.0, 6.0])
        assert np.allclose(forecast[:, 1], [-10.0, -12.0])

"""Tests for the async serving gateway: admission, coalescing, streaming.

No pytest-asyncio in the toolchain, so every async path runs through
``asyncio.run`` inside plain sync tests.  The bit-identity tests are the
load-bearing ones: whatever the gateway does at the door, an admitted
request must produce byte-for-byte the engine's direct answer.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.core import ForecastSpec, MultiCastConfig
from repro.data import synthetic_multivariate
from repro.exceptions import ConfigError
from repro.gateway import (
    AdmissionController,
    ForecastGateway,
    Overloaded,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)
from repro.serving import ForecastCache, ForecastEngine, ForecastRequest

HISTORY = synthetic_multivariate(n=80, num_dims=2, seed=3).values


def _spec(seed=0, execution="batched", num_samples=2, horizon=4):
    config = MultiCastConfig(
        num_samples=num_samples, model="uniform-sim", seed=seed
    )
    return ForecastSpec.from_config(
        config, series=HISTORY, horizon=horizon, execution=execution
    )


# -- token bucket / admission controller -------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_token_bucket_starts_full_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.5)
    clock.now += 0.5  # rate 2/s: half a second buys one token
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.now += 100.0
    assert bucket.tokens == pytest.approx(2.0)


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ConfigError):
        TokenBucket(rate=0.0)
    with pytest.raises(ConfigError):
        TokenBucket(rate=1.0, burst=0.5)
    with pytest.raises(ConfigError):
        TenantQuota(rate=-1.0)


def test_admission_controller_sheds_past_max_pending():
    admission = AdmissionController(max_pending=2)
    admission.acquire()
    admission.acquire()
    with pytest.raises(Overloaded) as caught:
        admission.acquire()
    assert caught.value.pending == 2
    assert caught.value.max_pending == 2
    admission.release()
    admission.acquire()  # slot freed, admission resumes
    assert admission.stats["shed"] == 1


def test_admission_controller_charges_tenant_quotas():
    clock = FakeClock()
    admission = AdmissionController(
        default_quota=TenantQuota(rate=1.0, burst=2.0), clock=clock
    )
    admission.charge("a")
    admission.charge("a")
    with pytest.raises(QuotaExceeded) as caught:
        admission.charge("a")
    assert caught.value.tenant == "a"
    assert caught.value.retry_after > 0
    admission.charge("b")  # independent bucket per tenant
    assert admission.stats["quota_rejected"] == 1


# -- bit-identity --------------------------------------------------------------


@pytest.mark.parametrize("execution", ["batched", "continuous"])
def test_gateway_results_bit_identical_to_direct_engine(execution):
    spec = _spec(seed=11, execution=execution)
    with ForecastEngine() as engine:
        direct = engine.forecast(ForecastRequest.from_spec(spec))
    assert direct.ok

    async def through_gateway():
        async with ForecastGateway() as gateway:
            handle = await gateway.submit(spec, tenant="t")
            return await gateway.result(handle)

    served = asyncio.run(through_gateway())
    assert served.ok
    assert served.values.tobytes() == direct.values.tobytes()
    assert (
        served.output.samples.tobytes() == direct.output.samples.tobytes()
    )


def test_coalesced_followers_get_bit_identical_private_copies():
    spec = _spec(seed=5)

    async def run():
        async with ForecastGateway() as gateway:
            leader = await gateway.submit(spec, tenant="a")
            follower = await gateway.submit(spec, tenant="b")
            assert follower.coalesced and not leader.coalesced
            first = await gateway.result(leader)
            second = await gateway.result(follower)
            return first, second

    first, second = asyncio.run(run())
    assert first.values.tobytes() == second.values.tobytes()
    # Private copy: mutating one tenant's array cannot leak to the other.
    assert first.output is not second.output
    assert second.request.tenant == "b"


# -- admission through the gateway --------------------------------------------


def test_shed_under_burst_is_deterministic():
    """A burst of max_pending + k distinct submissions sheds exactly k."""
    max_pending, extra = 4, 3
    specs = [_spec(seed=100 + i) for i in range(max_pending + extra)]

    async def burst():
        engine = ForecastEngine(cache=ForecastCache(max_entries=0))
        async with ForecastGateway(engine, max_pending=max_pending) as gateway:
            handles, shed = [], []
            # No await between submissions completes, so no slot can free
            # up mid-burst: admission order alone decides who is shed.
            for index, spec in enumerate(specs):
                try:
                    handles.append(await gateway.submit(spec))
                except Overloaded:
                    shed.append(index)
            responses = [await gateway.result(h) for h in handles]
        engine.close()
        return shed, responses

    shed, responses = asyncio.run(burst())
    assert shed == [max_pending, max_pending + 1, max_pending + 2]
    assert all(response.ok for response in responses)


def test_quota_exhaustion_raises_typed_error_not_hang():
    spec_a, spec_b, spec_c = (_spec(seed=s) for s in (1, 2, 3))

    async def run():
        async with ForecastGateway(
            default_quota=TenantQuota(rate=0.001, burst=2.0)
        ) as gateway:
            await gateway.submit(spec_a, tenant="greedy")
            await gateway.submit(spec_b, tenant="greedy")
            started = time.perf_counter()
            with pytest.raises(QuotaExceeded) as caught:
                await gateway.submit(spec_c, tenant="greedy")
            elapsed = time.perf_counter() - started
            return caught.value, elapsed

    error, elapsed = asyncio.run(run())
    assert error.tenant == "greedy"
    assert error.retry_after > 0
    assert elapsed < 1.0  # rejected at the door, never queued


def test_closed_gateway_rejects_submissions():
    async def run():
        gateway = ForecastGateway()
        await gateway.close()
        with pytest.raises(ConfigError):
            await gateway.submit(_spec())

    asyncio.run(run())


# -- streaming -----------------------------------------------------------------


def test_stream_replays_past_events_and_terminates_on_result():
    spec = _spec(seed=21, execution="pooled", num_samples=3)

    async def run():
        async with ForecastGateway() as gateway:
            handle = await gateway.submit(spec)
            await gateway.result(handle)  # finish before attaching
            kinds = [event.kind async for event in gateway.stream(handle)]
            return kinds

    kinds = asyncio.run(run())
    assert kinds[0] == "accepted"
    assert kinds[-1] == "result"
    assert kinds.count("progress") == 3  # pooled mode: one per draw


def test_stream_consumer_disconnecting_mid_request_detaches_cleanly():
    spec = _spec(seed=22, execution="pooled", num_samples=3)

    async def run():
        async with ForecastGateway() as gateway:
            handle = await gateway.submit(spec)
            stream = gateway.stream(handle)
            first = await anext(stream)
            assert handle.stream_consumers == 1
            await stream.aclose()  # disconnect mid-request
            assert handle.stream_consumers == 0
            response = await gateway.result(handle)
            return first.kind, response

    kind, response = asyncio.run(run())
    assert kind == "accepted"
    assert response.ok  # the request survived its audience leaving


# -- coalesced deadlines -------------------------------------------------------


def test_coalesced_followers_observe_independent_deadlines():
    spec = _spec(seed=31)

    async def run():
        # No result cache: the leader must actually compute, so the
        # follower's tiny deadline expires while the leader is in flight.
        engine = ForecastEngine(cache=ForecastCache(max_entries=0))
        async with ForecastGateway(engine) as gateway:
            leader = await gateway.submit(spec, tenant="patient")
            follower = await gateway.submit(
                ForecastRequest.from_spec(
                    spec, deadline_seconds=1e-6, tenant="hurried"
                )
            )
            assert follower.coalesced
            impatient = await gateway.result(follower)
            patient = await gateway.result(leader)
        engine.close()
        return impatient, patient

    impatient, patient = asyncio.run(run())
    assert not impatient.ok
    assert "deadline" in impatient.error
    assert patient.ok  # the leader (and its other consumers) unaffected


# -- observability -------------------------------------------------------------


def test_gateway_ledger_records_admission_outcomes(tmp_path):
    ledger_path = tmp_path / "gateway.jsonl"
    spec = _spec(seed=41)

    async def run():
        engine = ForecastEngine(ledger=str(ledger_path))
        async with ForecastGateway(
            engine,
            default_quota=TenantQuota(rate=0.001, burst=1.0),
        ) as gateway:
            leader = await gateway.submit(spec, tenant="a")
            follower = await gateway.submit(spec, tenant="b")
            with pytest.raises(QuotaExceeded):
                await gateway.submit(_spec(seed=42), tenant="a")
            await gateway.result(leader)
            await gateway.result(follower)
        engine.close()

    asyncio.run(run())
    records = [
        json.loads(line)
        for line in ledger_path.read_text().splitlines()
        if line.strip()
    ]
    by_admission = {record["admission"]: record for record in records}
    assert set(by_admission) == {"admitted", "coalesced", "quota"}
    admitted = by_admission["admitted"]
    assert admitted["tenant"] == "a"
    assert admitted["gateway_queue_wait_seconds"] >= 0
    coalesced = by_admission["coalesced"]
    assert coalesced["tenant"] == "b"
    assert coalesced["outcome"] == "ok"
    # The follower did no ingest of its own: its record must say
    # "coalesced", not echo the leader's miss/extend/fork (which lives on
    # the admitted record), and not the pre-fix hardcoded None.
    assert coalesced["ingest"] == "coalesced"
    assert by_admission["admitted"]["ingest"] in {"miss", "extend", "fork"}
    quota = by_admission["quota"]
    assert quota["outcome"] == "failed"
    assert quota["tenant"] == "a"


def test_direct_engine_records_admission_direct(tmp_path):
    ledger_path = tmp_path / "direct.jsonl"
    with ForecastEngine(ledger=str(ledger_path)) as engine:
        engine.forecast(ForecastRequest.from_spec(_spec(seed=51)))
    record = json.loads(ledger_path.read_text().splitlines()[0])
    assert record["admission"] == "direct"
    assert record["tenant"] == ""
    assert record["gateway_queue_wait_seconds"] is None


def test_gateway_metrics_and_stats():
    spec = _spec(seed=61)

    async def run():
        async with ForecastGateway(max_pending=2) as gateway:
            handle = await gateway.submit(spec)
            dupe = await gateway.submit(spec)
            await gateway.result(handle)
            await gateway.result(dupe)
            return gateway.stats(), gateway.metrics.snapshot()

    stats, snapshot = asyncio.run(run())
    assert stats["admission"]["pending"] == 0
    assert stats["inflight"] == 0
    assert snapshot["gateway_requests_total"]["value"] == 2
    assert snapshot["gateway_coalesced_total"]["value"] == 1
    assert "gateway_queue_wait_seconds" in snapshot


def test_poll_reports_lifecycle_states():
    spec = _spec(seed=71)

    async def run():
        async with ForecastGateway() as gateway:
            handle = await gateway.submit(spec)
            running = gateway.poll(handle).state
            follower = await gateway.submit(spec)
            coalesced = gateway.poll(follower).state
            await gateway.result(handle)
            await gateway.result(follower)
            return running, coalesced, gateway.poll(handle).state

    running, coalesced, done = asyncio.run(run())
    assert running == "running"
    assert coalesced == "coalesced"
    assert done == "done"


def test_manifest_jobs_carry_tenant():
    from repro.serving import load_manifest

    import json as json_module
    import tempfile

    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json_module.dump(
            {"jobs": [{"name": "x", "dataset": "gas_rate", "horizon": 4,
                       "tenant": "team-a"}]},
            handle,
        )
        path = handle.name
    job = load_manifest(path)[0]
    assert job.tenant == "team-a"
    request = job.to_request(np.zeros((10, 1)) + 1.0)
    assert request.tenant == "team-a"

"""Cross-request continuous batching: radix tree, scheduler, engine wiring.

Four layers are covered:

* :class:`~repro.scheduling.RadixPrefillTree` unit behaviour — exact-hit
  fork, cross-request prefix extension, shorter-query checkpoint reuse,
  LRU-by-token eviction with pinning, the disabled mode, thread safety;
* :class:`~repro.scheduling.ContinuousScheduler` — **bit-identity** with
  standalone per-request batched decoding across concurrent requests,
  admission-cap queueing, early stop, lifecycle;
* engine wiring — ``execution="continuous"`` byte-equality with
  ``"batched"`` across schemes × raw/SAX × cold/warm prefill tree, plus
  scheduler metrics and ledger fields;
* a thread-contention stress test: many threads submitting many specs
  concurrently, with no deadlock, no dropped request, and per-spec
  deterministic outputs.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import MultiCastConfig, SaxConfig
from repro.exceptions import ConfigError, GenerationError
from repro.llm import PPMLanguageModel, get_model
from repro.llm.sampling import child_seeds
from repro.scheduling import ContinuousScheduler, RadixPrefillTree
from repro.serving import ForecastEngine, ForecastRequest

RNG = np.random.default_rng(7)
HISTORY = np.column_stack(
    [
        np.sin(np.arange(60) / 3.0),
        np.cos(np.arange(60) / 4.0),
    ]
) + 0.05 * RNG.standard_normal((60, 2))


def _prefilled(tokens, vocab_size=6):
    model = PPMLanguageModel(vocab_size, max_order=4)
    model.reset(tokens)
    return model


def _factory(vocab_size=6):
    return lambda: PPMLanguageModel(vocab_size, max_order=4)


def _tokens(n, vocab_size=6, seed=0):
    return [int(t) for t in np.random.default_rng(seed).integers(0, vocab_size, n)]


class TestRadixPrefillTree:
    def test_exact_hit_forks_shared_instance(self):
        tree = RadixPrefillTree()
        prompt = _tokens(40)
        first = tree.prefill("m", 6, prompt, _factory())
        assert first.outcome == "miss" and first.ingested == len(prompt)
        again = tree.prefill("m", 6, prompt, _factory())
        assert again.outcome == "fork" and again.ingested == 0
        assert again.model is first.model  # the shared frozen snapshot

    def test_cross_request_prefix_extend(self):
        tree = RadixPrefillTree()
        prefix = _tokens(50, seed=1)
        tree.prefill("m", 6, prefix, _factory())
        longer = prefix + _tokens(20, seed=2)
        result = tree.prefill("m", 6, longer, _factory())
        assert result.outcome == "extend"
        assert result.matched == len(prefix)
        assert result.ingested == 20
        np.testing.assert_array_equal(
            result.model.next_distribution(),
            _prefilled(longer).next_distribution(),
        )

    def test_shorter_query_finds_doubling_checkpoint(self):
        tree = RadixPrefillTree()
        prompt = _tokens(150, seed=3)
        tree.prefill("m", 6, prompt, _factory())
        # 100 < the 128 checkpoint, so the walk stops at the 64 snapshot.
        result = tree.prefill("m", 6, prompt[:100], _factory())
        assert result.outcome == "extend"
        assert result.matched == 64
        np.testing.assert_array_equal(
            result.model.next_distribution(),
            _prefilled(prompt[:100]).next_distribution(),
        )

    def test_prefill_bitwise_matches_plain_reset(self):
        tree = RadixPrefillTree()
        prompt = _tokens(90, seed=4)
        result = tree.prefill("m", 6, prompt, _factory())
        np.testing.assert_array_equal(
            result.model.next_distribution(),
            _prefilled(prompt).next_distribution(),
        )

    def test_namespaced_by_model_and_vocab(self):
        tree = RadixPrefillTree()
        prompt = _tokens(30, seed=5)
        tree.prefill("m", 6, prompt, _factory())
        assert tree.lookup("other", 6, prompt).outcome == "miss"
        assert tree.lookup("m", 7, prompt).outcome == "miss"
        assert tree.lookup("m", 6, prompt).outcome == "fork"

    def test_lru_eviction_by_resident_tokens(self):
        tree = RadixPrefillTree(max_tokens=40)
        old = _tokens(20, seed=6)
        new = [9 % 6] + _tokens(19, seed=8)
        tree.insert("m", 6, old, _prefilled(old))
        tree.lookup("m", 6, old)  # touch
        tree.insert("m", 6, new, _prefilled(new))
        third = [5] + _tokens(30, seed=9)
        tree.insert("m", 6, third, _prefilled(third))
        assert tree.stats["evictions"] >= 1
        assert tree.stats["resident_tokens"] <= 40

    def test_pinned_nodes_survive_eviction(self):
        tree = RadixPrefillTree(max_tokens=30)
        pinned_prompt = _tokens(20, seed=10)
        pinned = tree.prefill("m", 6, pinned_prompt, _factory(), pin=True)
        tree.insert("m", 6, [1] + _tokens(25, seed=11), _prefilled([1]))
        assert tree.lookup("m", 6, pinned_prompt).outcome == "fork"
        tree.release(pinned)
        tree.insert("m", 6, [2] + _tokens(28, seed=12), _prefilled([2]))
        assert tree.stats["resident_tokens"] <= 30

    def test_release_is_idempotent(self):
        tree = RadixPrefillTree()
        result = tree.prefill("m", 6, _tokens(20, seed=13), _factory(), pin=True)
        tree.release(result)
        tree.release(result)  # second release is a no-op

    def test_disabled_tree_is_a_no_op_but_still_ingests(self):
        tree = RadixPrefillTree(max_tokens=0)
        prompt = _tokens(40, seed=14)
        result = tree.prefill("m", 6, prompt, _factory())
        assert result.outcome == "miss"
        assert len(tree) == 0
        np.testing.assert_array_equal(
            result.model.next_distribution(),
            _prefilled(prompt).next_distribution(),
        )

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            RadixPrefillTree(max_tokens=-1)

    def test_clear_drops_snapshots(self):
        tree = RadixPrefillTree()
        tree.prefill("m", 6, _tokens(30, seed=15), _factory())
        assert len(tree) > 0
        tree.clear()
        assert len(tree) == 0

    def test_concurrent_prefills_are_consistent(self):
        tree = RadixPrefillTree()
        prompts = [_tokens(60, seed=s) for s in (20, 20, 21, 22)]
        results = [None] * 8
        errors = []

        def worker(index):
            try:
                prompt = prompts[index % len(prompts)]
                result = tree.prefill("m", 6, prompt, _factory())
                results[index] = (
                    prompt,
                    result.model.next_distribution().copy(),
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for prompt, dist in results:
            np.testing.assert_array_equal(
                dist, _prefilled(prompt).next_distribution()
            )


    def test_concurrent_identical_prompts_single_flight(self):
        tree = RadixPrefillTree()
        prompt = _tokens(2000, seed=23)
        builds = []

        def counting_factory():
            model = PPMLanguageModel(6, max_order=4)
            builds.append(model)
            return model

        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            results[index] = tree.prefill("m", 6, prompt, counting_factory)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One leader ingests; everyone else waits and forks its deposit.
        assert len(builds) == 1
        assert sum(1 for r in results if r.outcome == "fork") == 7
        assert sum(r.ingested for r in results) == len(prompt)
        reference = _prefilled(prompt).next_distribution()
        for result in results:
            np.testing.assert_array_equal(
                result.model.next_distribution(), reference
            )


def _make_rngs(seed, n):
    return [np.random.default_rng(s) for s in child_seeds(np.random.default_rng(seed), n)]


class TestContinuousScheduler:
    def test_matches_standalone_batched_bitwise(self):
        vocab = 12
        jobs = [
            ("llama2-7b-sim", _tokens(80, vocab, seed=30), 4, 12),
            ("phi2-2.7b-sim", _tokens(50, vocab, seed=31), 3, 9),
            ("ngram-sim", _tokens(80, vocab, seed=30), 5, 7),
            ("llama2-7b-sim", _tokens(80, vocab, seed=30), 2, 12),
        ]
        expected = []
        for preset, prompt, streams, budget in jobs:
            llm = get_model(preset, vocab)
            decoder = llm.generate_batch(
                prompt, budget, _make_rngs(hash((preset, budget)) % 2**31, streams)
            )
            expected.append(decoder.results)
        scheduler = ContinuousScheduler(
            max_resident_streams=6, prefill_tree=RadixPrefillTree()
        )
        handles = [
            scheduler.submit(
                get_model(preset, vocab),
                prompt,
                budget,
                _make_rngs(hash((preset, budget)) % 2**31, streams),
            )
            for preset, prompt, streams, budget in jobs
        ]
        outputs = [handle.result(timeout=60) for handle in handles]
        scheduler.close()
        for want, got in zip(expected, outputs):
            for a, b in zip(want, got):
                assert a.tokens == b.tokens
                assert a.log_probs == b.log_probs

    def test_admission_cap_queues_fifo_and_all_complete(self):
        scheduler = ContinuousScheduler(max_resident_streams=2)
        llm = get_model("uniform-sim", 8)
        handles = [
            scheduler.submit(llm, _tokens(10, 8, seed=i), 6, _make_rngs(i, 2))
            for i in range(5)
        ]
        for handle in handles:
            results = handle.result(timeout=60)
            assert all(len(r.tokens) == 6 for r in results)
        stats = scheduler.stats
        scheduler.close()
        assert stats["admitted"] == 5
        assert stats["completed"] == 5
        assert stats["queue_depth"] == 0

    def test_request_wider_than_cap_still_runs(self):
        scheduler = ContinuousScheduler(max_resident_streams=2)
        llm = get_model("uniform-sim", 8)
        handle = scheduler.submit(llm, _tokens(10, 8), 4, _make_rngs(0, 6))
        results = handle.result(timeout=60)
        scheduler.close()
        assert all(len(r.tokens) == 4 for r in results)

    def test_stop_abandons_live_streams(self):
        scheduler = ContinuousScheduler()
        llm = get_model("uniform-sim", 8)
        handle = scheduler.submit(
            llm, _tokens(10, 8), 50, _make_rngs(1, 3), stop=lambda: True
        )
        results = handle.result(timeout=60)
        scheduler.close()
        assert handle.stopped
        assert results == [None, None, None]

    def test_zero_budget_streams_retire_immediately(self):
        scheduler = ContinuousScheduler()
        llm = get_model("uniform-sim", 8)
        handle = scheduler.submit(llm, _tokens(10, 8), [0, 3], _make_rngs(2, 2))
        results = handle.result(timeout=60)
        scheduler.close()
        assert results[0].tokens == []
        assert len(results[1].tokens) == 3

    def test_submit_after_close_raises(self):
        scheduler = ContinuousScheduler()
        scheduler.close()
        with pytest.raises(GenerationError):
            scheduler.submit(
                get_model("uniform-sim", 8), _tokens(5, 8), 2, _make_rngs(3, 1)
            )

    def test_empty_stream_list_rejected(self):
        scheduler = ContinuousScheduler()
        with pytest.raises(GenerationError):
            scheduler.submit(get_model("uniform-sim", 8), _tokens(5, 8), 2, [])
        scheduler.close()

    def test_metrics_and_queue_wait_recorded(self):
        from repro.serving.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        scheduler = ContinuousScheduler(max_resident_streams=2, metrics=metrics)
        llm = get_model("uniform-sim", 8)
        handles = [
            scheduler.submit(llm, _tokens(10, 8, seed=i), 5, _make_rngs(i, 2))
            for i in range(4)
        ]
        for handle in handles:
            handle.result(timeout=60)
            assert handle.queue_wait_seconds >= 0.0
        scheduler.close()
        snapshot = metrics.snapshot()
        assert snapshot["sched_requests_total"]["value"] == 4
        assert snapshot["sched_requests_completed"]["value"] == 4
        assert snapshot["sched_queue_wait_seconds"]["count"] == 4
        assert snapshot["sched_step_occupancy"]["count"] > 0


def _request(execution, *, seed=11, scheme="vi", sax=None, use_cache=True):
    config = MultiCastConfig(
        scheme=scheme, num_samples=4, seed=seed, sax=sax
    )
    return ForecastRequest(
        HISTORY,
        horizon=6,
        config=config,
        execution=execution,
        use_cache=use_cache,
    )


class TestEngineContinuous:
    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    @pytest.mark.parametrize("sax", [None, SaxConfig(segment_length=4)])
    def test_continuous_matches_batched_cold_and_warm(self, scheme, sax):
        with ForecastEngine(num_workers=2) as engine:
            batched = engine.forecast(
                _request("batched", scheme=scheme, sax=sax, use_cache=False)
            )
        with ForecastEngine(num_workers=2) as engine:
            cold = engine.forecast(
                _request("continuous", scheme=scheme, sax=sax, use_cache=False)
            )
            warm = engine.forecast(
                _request("continuous", scheme=scheme, sax=sax, use_cache=False)
            )
        for response in (cold, warm):
            assert response.ok
            assert response.output.metadata["execution"] == "continuous"
            assert (
                response.output.values.tobytes()
                == batched.output.values.tobytes()
            )
            assert (
                response.output.samples.tobytes()
                == batched.output.samples.tobytes()
            )
        assert cold.output.metadata["ingest"] == "miss"
        assert warm.output.metadata["ingest"] == "fork"

    def test_shared_tree_forks_across_tenants(self):
        with ForecastEngine(num_workers=2) as engine:
            first = engine.forecast(_request("continuous", seed=1, use_cache=False))
            second = engine.forecast(_request("continuous", seed=2, use_cache=False))
            snapshot = engine.metrics_snapshot()
        assert first.ok and second.ok
        # Same history, different seed: same prompt, so the radix tree
        # serves the second request's ingest outright.
        assert second.output.metadata["ingest"] == "fork"
        assert snapshot["prefill_tree"]["hits"] >= 1
        assert snapshot["scheduler"]["completed"] == 2

    def test_scheduler_created_lazily(self):
        with ForecastEngine(num_workers=2) as engine:
            engine.forecast(_request("batched", use_cache=False))
            assert "scheduler" not in engine.metrics_snapshot()
            engine.forecast(_request("continuous", use_cache=False))
            assert "scheduler" in engine.metrics_snapshot()

    def test_ledger_records_execution_and_queue_wait(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with ForecastEngine(num_workers=2, ledger=str(path)) as engine:
            engine.forecast(_request("continuous", use_cache=False))
        record = json.loads(path.read_text().strip().splitlines()[-1])
        assert record["execution"] == "continuous"
        assert record["queue_wait_seconds"] is not None
        assert record["ingest"] == "miss"

    def test_continuous_respects_deadline(self):
        config = MultiCastConfig(scheme="vi", num_samples=3, seed=5)
        request = ForecastRequest(
            HISTORY,
            horizon=6,
            config=config,
            execution="continuous",
            deadline_seconds=1e-9,
            use_cache=False,
        )
        with ForecastEngine(num_workers=2) as engine:
            response = engine.forecast(request)
        # Every stream was abandoned before its first step: a clean
        # deadline error, not a hang.
        assert not response.ok
        assert "deadline" in response.error

    def test_invalid_max_resident_streams_rejected(self):
        with pytest.raises(ConfigError):
            ForecastEngine(max_resident_streams=0)


class TestSubmitContention:
    """Satellite: concurrent ``submit()`` under thread contention."""

    def test_many_threads_many_specs_no_drops_deterministic(self):
        specs = [
            _request("continuous", seed=seed, use_cache=False)
            for seed in (1, 2, 3)
        ]
        with ForecastEngine(num_workers=4, max_concurrent_requests=4) as engine:
            reference = [
                engine.forecast(_request("batched", seed=seed, use_cache=False))
                for seed in (1, 2, 3)
            ]
            futures = []
            for _ in range(4):  # 4 waves x 3 specs submitted concurrently
                futures.extend(engine.submit(spec) for spec in specs)
            responses = [future.result(timeout=120) for future in futures]
        assert len(responses) == 12
        for index, response in enumerate(responses):
            assert response.ok, response.error
            want = reference[index % len(specs)]
            assert (
                response.output.values.tobytes()
                == want.output.values.tobytes()
            )
            assert (
                response.output.samples.tobytes()
                == want.output.samples.tobytes()
            )


class TestCliContinuous:
    def test_forecast_execution_continuous_is_value_neutral(self, tmp_path, capsys):
        from repro.cli import main

        outputs = {}
        for mode in ("batched", "continuous"):
            out_path = tmp_path / f"{mode}.csv"
            code = main([
                "forecast", "--dataset", "gas_rate", "--num-samples", "2",
                "--horizon", "5", "--execution", mode,
                "--output", str(out_path),
            ])
            assert code == 0
            outputs[mode] = out_path.read_text()
        capsys.readouterr()
        assert outputs["batched"] == outputs["continuous"]

    def test_batch_execution_override_and_stream_cap(self, tmp_path, capsys):
        from repro.cli import main

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({
            "jobs": [
                {"name": "a", "dataset": "gas_rate", "horizon": 4,
                 "num_samples": 2, "scheme": "vi"},
                {"name": "b", "dataset": "gas_rate", "horizon": 4,
                 "num_samples": 2, "scheme": "di"},
            ]
        }))
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "batch", "--manifest", str(manifest),
            "--execution", "continuous",
            "--max-resident-streams", "4",
            "--metrics-out", str(metrics_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "a: ok" in out and "b: ok" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["scheduler"]["completed"] == 2
        assert snapshot["scheduler"]["max_resident_streams"] == 4

    def test_batch_rejects_bad_execution_override(self, tmp_path):
        from repro.cli import main

        manifest = tmp_path / "jobs.json"
        manifest.write_text(json.dumps({
            "jobs": [{"name": "a", "dataset": "gas_rate", "horizon": 4}]
        }))
        with pytest.raises(SystemExit):
            main(["batch", "--manifest", str(manifest),
                  "--execution", "warp"])

"""Unit and property tests for the dimensional multiplexers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multiplex import (
    MULTIPLEX_SCHEMES,
    BlockInterleaver,
    DigitInterleaver,
    SaxSymbolCodec,
    ValueConcatenator,
    ValueInterleaver,
    get_multiplexer,
)
from repro.encoding import SEPARATOR, DigitCodec
from repro.exceptions import ConfigError, EncodingError
from repro.sax import SaxAlphabet


def _text(tokens):
    return "".join(tokens)


class TestPaperExamples:
    """The worked example of Figure 1: d1=[17, 26], d2=[23, 31]."""

    codes = np.array([[17, 23], [26, 31]])
    codec = DigitCodec(2)

    def test_digit_interleaving_matches_figure_1a(self):
        stream = DigitInterleaver().mux(self.codes, self.codec)
        assert _text(stream) == "1273,2361"

    def test_value_interleaving_matches_figure_1b(self):
        stream = ValueInterleaver().mux(self.codes, self.codec)
        assert _text(stream) == "1723,2631"

    def test_value_concatenation_matches_figure_1c(self):
        stream = ValueConcatenator().mux(self.codes, self.codec)
        assert _text(stream) == "17,23,26,31"

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc", "bi"])
    def test_round_trip(self, scheme):
        mux = get_multiplexer(scheme)
        stream = mux.mux(self.codes, self.codec)
        recovered = mux.demux(stream, num_dims=2, codec=self.codec)
        assert np.array_equal(recovered, self.codes)


class TestTokensPerTimestamp:
    def test_grouped_schemes(self):
        for mux in (DigitInterleaver(), ValueInterleaver(), BlockInterleaver()):
            # d*b digits plus one separator.
            assert mux.tokens_per_timestamp(3, 4) == 13

    def test_vc_pays_separator_per_value(self):
        assert ValueConcatenator().tokens_per_timestamp(3, 4) == 15

    def test_mux_stream_length_matches_accounting(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 1000, size=(12, 3))
        codec = DigitCodec(3)
        for scheme in MULTIPLEX_SCHEMES:
            mux = get_multiplexer(scheme)
            stream = mux.mux(codes, codec)
            # Stream omits the final trailing separator.
            expected = 12 * mux.tokens_per_timestamp(3, 3) - 1
            assert len(stream) == expected, scheme


class TestLenientDemux:
    codec = DigitCodec(3)

    def test_truncated_final_group_is_dropped_by_default(self):
        mux = ValueInterleaver()
        codes = np.array([[987, 654], [321, 789]])
        stream = mux.mux(codes, self.codec)
        # Cut mid-way through the final group: the incomplete trailing
        # timestamp is dropped rather than padded into a biased row.
        recovered = mux.demux(stream[:-3], num_dims=2, codec=self.codec)
        assert recovered.shape == (1, 2)
        assert recovered[0].tolist() == [987, 654]

    def test_truncated_final_group_is_completed_on_opt_in(self):
        mux = ValueInterleaver()
        codes = np.array([[123, 456]])
        stream = mux.mux(codes, self.codec)
        # Cut the stream mid-way through the second value.
        recovered = mux.demux(
            stream[:4], num_dims=2, codec=self.codec, pad_incomplete=True
        )
        assert recovered.shape == (1, 2)
        assert recovered[0, 0] == 123
        assert recovered[0, 1] == 400  # "4" right-padded with zeros

    def test_vc_truncated_trailing_value_dropped_by_default(self):
        mux = ValueConcatenator()
        codes = np.array([[12, 345]])
        stream = mux.mux(codes, self.codec)
        # Cut mid-way through the second value's digits.
        recovered = mux.demux(stream[:5], num_dims=2, codec=self.codec)
        assert recovered.shape == (0, 2)
        padded = mux.demux(
            stream[:5], num_dims=2, codec=self.codec, pad_incomplete=True
        )
        assert padded.shape == (1, 2)

    def test_vc_drops_incomplete_trailing_timestamp(self):
        mux = ValueConcatenator()
        codes = np.array([[1, 2], [3, 4]])
        stream = mux.mux(codes, self.codec)
        # Remove the last value entirely: only one full timestamp remains.
        cut = stream[: stream.index(SEPARATOR, 8)]
        recovered = mux.demux(cut[:7], num_dims=2, codec=self.codec)
        assert recovered.shape[1] == 2

    def test_empty_stream_gives_zero_rows(self):
        for scheme in MULTIPLEX_SCHEMES:
            mux = get_multiplexer(scheme)
            out = mux.demux([], num_dims=2, codec=self.codec)
            assert out.shape == (0, 2)

    def test_digit_interleaver_truncation_loses_low_order_digits(self):
        mux = DigitInterleaver()
        codes = np.array([[789, 123]])
        stream = mux.mux(codes, self.codec)  # 7 1 8 2 9 3
        recovered = mux.demux(
            stream[:4], num_dims=2, codec=self.codec, pad_incomplete=True
        )
        # Tokens 7 1 8 2 -> dim0 has digits 7,8,_ -> 780; dim1 1,2,_ -> 120.
        assert recovered[0].tolist() == [780, 120]


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            get_multiplexer("zigzag")

    def test_non_integer_matrix_rejected(self):
        with pytest.raises(EncodingError):
            ValueInterleaver().mux(np.zeros((2, 2)), DigitCodec(2))

    def test_1d_matrix_rejected(self):
        with pytest.raises(EncodingError):
            ValueInterleaver().mux(np.array([1, 2, 3]), DigitCodec(2))

    def test_overflowing_value_rejected(self):
        with pytest.raises(EncodingError):
            ValueInterleaver().mux(np.array([[100]]), DigitCodec(2))

    def test_non_finite_matrix_rejected_with_clear_message(self):
        # NaN/inf must fail loudly before np.rint(nan) turns into an
        # undefined integer cast downstream.
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(EncodingError, match="NaN or inf"):
                ValueInterleaver().mux(np.array([[1.0, bad]]), DigitCodec(2))


class TestBlockInterleaver:
    def test_rotation_changes_layout_but_round_trips(self):
        codes = np.array([[11, 22, 33], [44, 55, 66], [77, 88, 99]])
        codec = DigitCodec(2)
        mux = BlockInterleaver()
        stream = mux.mux(codes, codec)
        groups = _text(stream).split(",")
        assert groups[0] == "112233"  # rotation 0
        assert groups[1] == "556644"  # rotation 1: dims (1, 2, 0)
        assert np.array_equal(mux.demux(stream, 3, codec), codes)

    @pytest.mark.parametrize("scheme", sorted(MULTIPLEX_SCHEMES))
    @pytest.mark.parametrize("offset", [0, 1, 2, 3, 4, 5])
    def test_row_offset_continuation_agrees_with_sliced_full_demux(
        self, scheme, offset
    ):
        # A generated stream starts mid-rotation at the history's length:
        # demuxing it with row_offset must agree with demuxing the whole
        # stream and slicing.  This is the contract BI's rotation relies on.
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 100, size=(5, 3))
        codec = DigitCodec(2)
        mux = get_multiplexer(scheme)
        stream = mux.mux(codes, codec)
        boundary = offset * mux.tokens_per_timestamp(3, 2)
        tail = mux.demux(stream[boundary:], 3, codec, row_offset=offset)
        assert np.array_equal(tail, codes[offset:])


class TestSaxSymbolCodec:
    alphabet = SaxAlphabet.alphabetical(5)

    def test_width_is_one(self):
        assert SaxSymbolCodec(self.alphabet).num_digits == 1

    def test_round_trip(self):
        codec = SaxSymbolCodec(self.alphabet)
        for i in range(5):
            assert codec.value_of_partial(codec.digits_of(i)) == i

    def test_out_of_alphabet_index_rejected(self):
        with pytest.raises(EncodingError):
            SaxSymbolCodec(self.alphabet).digits_of(5)

    def test_pad_token_is_middle_symbol(self):
        assert SaxSymbolCodec(self.alphabet).pad_token == "c"

    def test_multiplexes_symbols(self):
        codec = SaxSymbolCodec(self.alphabet)
        codes = np.array([[0, 1], [1, 2]])
        stream = ValueInterleaver().mux(codes, codec)
        assert _text(stream) == "ab,bc"
        assert np.array_equal(
            ValueInterleaver().demux(stream, 2, codec), codes
        )


class TestConstraintPatterns:
    def test_grouped_pattern(self):
        digits = frozenset(range(10))
        pattern = ValueInterleaver().constraint_pattern(2, 3, digits, 10)
        assert len(pattern) == 7
        assert pattern[:6] == [digits] * 6
        assert pattern[6] == frozenset([10])

    def test_vc_pattern_is_per_value(self):
        digits = frozenset(range(10))
        pattern = ValueConcatenator().constraint_pattern(2, 3, digits, 10)
        assert len(pattern) == 4


matrices = st.integers(min_value=1, max_value=5).flatmap(
    lambda d: st.integers(min_value=1, max_value=4).flatmap(
        lambda width: st.lists(
            st.lists(
                st.integers(min_value=0, max_value=10**width - 1),
                min_size=d,
                max_size=d,
            ),
            min_size=1,
            max_size=20,
        ).map(lambda rows: (np.asarray(rows, dtype=np.int64), width))
    )
)


@given(matrices, st.sampled_from(sorted(MULTIPLEX_SCHEMES)))
@settings(max_examples=80, deadline=None)
def test_mux_demux_round_trip_property(matrix_and_width, scheme):
    """demux(mux(x)) == x for every scheme, shape, and digit width."""
    codes, width = matrix_and_width
    codec = DigitCodec(width)
    mux = get_multiplexer(scheme)
    stream = mux.mux(codes, codec)
    assert np.array_equal(mux.demux(stream, codes.shape[1], codec), codes)


@given(matrices, st.sampled_from(sorted(MULTIPLEX_SCHEMES)), st.data())
@settings(max_examples=60, deadline=None)
def test_demux_of_any_prefix_never_crashes_property(matrix_and_width, scheme, data):
    """Truncated model output must always demultiplex without raising."""
    codes, width = matrix_and_width
    codec = DigitCodec(width)
    mux = get_multiplexer(scheme)
    stream = mux.mux(codes, codec)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
    recovered = mux.demux(stream[:cut], codes.shape[1], codec)
    assert recovered.shape[1] == codes.shape[1]
    assert recovered.shape[0] <= codes.shape[0]
    # With the trailing incomplete timestamp dropped, every recovered row
    # is an exact prefix of the original matrix.
    assert np.array_equal(recovered, codes[: recovered.shape[0]])
    # The opt-in padded mode agrees on all fully-present rows.
    padded = mux.demux(stream[:cut], codes.shape[1], codec, pad_incomplete=True)
    assert padded.shape[0] >= recovered.shape[0]
    if recovered.shape[0]:
        assert np.array_equal(padded[: recovered.shape[0]], recovered)

"""Tests for the dimensionality and context-length scaling studies."""

import pytest

from repro.exceptions import ConfigError
from repro.experiments import context_length_study, dimensionality_study


class TestDimensionalityStudy:
    def test_structure(self):
        table = dimensionality_study(dims=(2, 3), n=100, num_samples=2)
        assert table.header == ["Method", "2", "3"]
        assert {row[0] for row in table.rows} == {
            "multicast-di", "multicast-vi", "multicast-vc", "llmtime",
        }

    def test_cells_finite_and_positive(self):
        table = dimensionality_study(dims=(2, 4), n=100, num_samples=2)
        for row in table.rows:
            for value in row[1:]:
                assert 0.0 < value < 10.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            dimensionality_study(dims=(1, 2))


class TestContextLengthStudy:
    def test_structure_and_regimes(self):
        table = context_length_study(budgets=(128, 512), num_samples=2)
        labels = [row[0] for row in table.rows]
        assert "stationary, llama2-sim" in labels
        assert "trending, llama2-sim" in labels
        assert "trending, recency-ppm" in labels
        for row in table.rows:
            assert len(row) == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            context_length_study(budgets=(8, 128))

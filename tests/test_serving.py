"""Tests for the serving subsystem: engine, cache, policy, and metrics.

The flaky/slow backend models follow the injection pattern of
``test_failure_injection.py``: adversarial specs registered into the model
registry, exercised through the full pipeline.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.data import synthetic_multivariate
from repro.exceptions import ConfigError, GenerationError
from repro.llm import ModelSpec, TokenCostModel, register_model
from repro.llm.ppm import PPMLanguageModel
from repro.serving import (
    Deadline,
    ForecastCache,
    ForecastEngine,
    ForecastRequest,
    MetricsRegistry,
    RetryPolicy,
    forecast_digest,
)

HISTORY = synthetic_multivariate(n=100, num_dims=2, seed=0).values


def _output(config=None, horizon=5, seed=0):
    config = config or MultiCastConfig(num_samples=2, seed=seed)
    spec = ForecastSpec.from_config(config, series=HISTORY, horizon=horizon)
    return MultiCastForecaster().forecast(spec)


class _FlakyPPM(PPMLanguageModel):
    """Fails the first ``fail_first`` reset() calls (shared counter), then works."""

    failures = {"remaining": 0}
    lock = threading.Lock()

    def reset(self, context):
        with self.lock:
            if self.failures["remaining"] > 0:
                self.failures["remaining"] -= 1
                raise GenerationError("transient upstream failure")
        super().reset(context)


class _SlowPPM(PPMLanguageModel):
    """Sleeps before decoding — every draw blows the deadline.

    The delay sits in ``decode`` (not ``reset``) because prompt ingest is
    shared across draws; deadline tests need each *draw* to be slow.
    """

    delay = 0.3

    def decode(self, *args, **kwargs):
        time.sleep(self.delay)
        return super().decode(*args, **kwargs)


def _register(name, factory):
    register_model(
        ModelSpec(name=name, factory=factory, cost=TokenCostModel(0.1)),
        overwrite=True,
    )


class TestForecastCache:
    def test_hit_returns_equal_output_and_counts(self):
        cache = ForecastCache(max_entries=4)
        output = _output()
        key = forecast_digest(HISTORY, MultiCastConfig(num_samples=2), 5)
        assert cache.get(key) is None  # miss
        cache.put(key, output)
        hit = cache.get(key)
        assert hit is not None
        assert np.array_equal(hit.values, output.values)
        stats = cache.stats
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_returned_entry_is_a_private_copy(self):
        cache = ForecastCache()
        output = _output()
        cache.put("k", output)
        first = cache.get("k")
        first.values[:] = -999.0
        second = cache.get("k")
        assert not np.array_equal(first.values, second.values)

    def test_lru_eviction_order(self):
        cache = ForecastCache(max_entries=2)
        output = _output()
        cache.put("a", output)
        cache.put("b", output)
        assert cache.get("a") is not None  # refresh a → b is now LRU
        cache.put("c", output)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats["evictions"] == 1

    def test_disabled_cache_never_stores(self):
        cache = ForecastCache(max_entries=0)
        assert not cache.enabled
        cache.put("k", _output())
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_digest_sensitivity(self):
        config = MultiCastConfig(num_samples=2)
        base = forecast_digest(HISTORY, config, 5)
        assert forecast_digest(HISTORY, config, 5) == base
        assert forecast_digest(HISTORY, config, 6) != base
        assert forecast_digest(HISTORY * 1.0001, config, 5) != base
        assert forecast_digest(HISTORY, MultiCastConfig(num_samples=3), 5) != base
        assert forecast_digest(HISTORY, config, 5, seed=1) != base
        # seed override equal to the config seed is the same computation
        assert forecast_digest(HISTORY, config, 5, seed=config.seed) == base

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            ForecastCache(max_entries=-1)


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_retry_then_succeed(self):
        calls = {"n": 0}
        slept = []

        def task():
            calls["n"] += 1
            if calls["n"] < 3:
                raise GenerationError("flaky")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        result, attempts = policy.run(task, sleep=slept.append)
        assert result == "ok" and attempts == 3
        assert slept == pytest.approx([0.01, 0.02])

    def test_exhaustion_raises_last_error(self):
        def task():
            raise GenerationError("always down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(GenerationError, match="always down"):
            policy.run(task, sleep=lambda s: None)

    def test_non_generation_errors_propagate_immediately(self):
        calls = {"n": 0}

        def task():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).run(task, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_expired_deadline_stops_retrying(self):
        deadline = Deadline(10.0, clock=iter([0.0, 20.0, 20.0, 20.0]).__next__)
        with pytest.raises(GenerationError):
            RetryPolicy(max_attempts=5).run(
                lambda: (_ for _ in ()).throw(GenerationError("x")),
                deadline=deadline,
                sleep=lambda s: None,
            )

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            Deadline(0.0)


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("inflight").add(3)
        registry.gauge("inflight").add(-1)
        assert registry.counter("hits").value == 3
        assert registry.gauge("inflight").value == 2
        with pytest.raises(ConfigError):
            registry.counter("hits").inc(-1)

    def test_histogram_quantiles_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.5)
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == pytest.approx(50.5)
        assert snapshot["p95"] == pytest.approx(95.05)
        assert snapshot["p99"] == pytest.approx(99.01)
        assert snapshot["min"] == 1.0 and snapshot["max"] == 100.0

    def test_histogram_window_bounds_memory(self):
        histogram = MetricsRegistry().histogram("w")
        for value in range(10000):
            histogram.observe(float(value))
        assert histogram.count == 10000  # lifetime count survives the window
        assert histogram.quantile(0.0) >= 10000 - 4096  # window dropped old obs

    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("span_seconds"):
            time.sleep(0.01)
        assert registry.histogram("span_seconds").count == 1
        assert registry.histogram("span_seconds").mean >= 0.009

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")

    def test_json_snapshot_round_trips(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        parsed = json.loads(registry.to_json())
        assert parsed["a"]["value"] == 1
        assert parsed["b"]["count"] == 1


class TestEngineEquivalence:
    @pytest.mark.parametrize("scheme", ["di", "vc"])
    def test_parallel_matches_sequential_exactly(self, scheme):
        """The headline determinism property: engine fan-out is bit-identical
        to sequential MultiCastForecaster.forecast under a fixed seed."""
        config = MultiCastConfig(scheme=scheme, num_samples=5, seed=42)
        sequential = MultiCastForecaster().forecast(
            ForecastSpec.from_config(
                config, series=HISTORY, horizon=7, execution="sequential"
            )
        )
        with ForecastEngine(num_workers=4) as engine:
            served = engine.forecast(ForecastRequest(HISTORY, 7, config=config))
        assert served.ok and not served.partial
        assert np.array_equal(served.output.values, sequential.values)
        assert np.array_equal(served.output.samples, sequential.samples)

    def test_sax_and_seed_override_equivalence(self):
        config = MultiCastConfig(num_samples=4, sax=SaxConfig(), seed=0)
        sequential = MultiCastForecaster().forecast(
            ForecastSpec.from_config(
                config, series=HISTORY, horizon=9, seed=5, execution="sequential"
            )
        )
        with ForecastEngine(num_workers=3) as engine:
            served = engine.forecast(
                ForecastRequest(HISTORY, 9, config=config, seed=5)
            )
        assert np.array_equal(served.output.samples, sequential.samples)


class TestEngineServing:
    def test_cache_hit_on_repeat_and_isolation_between_configs(self):
        with ForecastEngine(num_workers=2) as engine:
            request = ForecastRequest(
                HISTORY, 5, config=MultiCastConfig(num_samples=2)
            )
            first = engine.forecast(request)
            second = engine.forecast(request)
            other = engine.forecast(
                ForecastRequest(HISTORY, 5, config=MultiCastConfig(num_samples=3))
            )
        assert not first.cache_hit and second.cache_hit and not other.cache_hit
        assert np.array_equal(first.output.values, second.output.values)
        assert engine.metrics.counter("cache_hits").value == 1

    def test_use_cache_false_bypasses(self):
        with ForecastEngine(num_workers=2) as engine:
            request = ForecastRequest(
                HISTORY, 5, config=MultiCastConfig(num_samples=2), use_cache=False
            )
            engine.forecast(request)
            repeat = engine.forecast(request)
        assert not repeat.cache_hit

    def test_batch_preserves_order_and_isolates_failures(self):
        good = MultiCastConfig(num_samples=2)
        requests = [
            ForecastRequest(HISTORY, 4, config=good, name="ok-1"),
            ForecastRequest(np.zeros((10, 2)), 4, config=good, name="bad-nan"),
            ForecastRequest(HISTORY, 4, config=good, name="ok-2"),
        ]
        requests[1].history = np.full((10, 2), np.nan)
        with ForecastEngine(num_workers=2) as engine:
            responses = engine.forecast_batch(requests)
        assert [r.name for r in responses] == ["ok-1", "bad-nan", "ok-2"]
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok and "NaN" in responses[1].error

    def test_retry_then_succeed_with_flaky_model(self):
        _register("serving-flaky", lambda v: _FlakyPPM(v, max_order=3))
        _FlakyPPM.failures["remaining"] = 2
        config = MultiCastConfig(num_samples=3, model="serving-flaky", seed=0)
        with ForecastEngine(
            num_workers=2, retry=RetryPolicy(max_attempts=3, base_delay=0.001)
        ) as engine:
            response = engine.forecast(ForecastRequest(HISTORY, 4, config=config))
            assert response.ok and not response.partial
            assert response.attempts >= 2
            assert engine.metrics.counter("sample_retries").value >= 2

    def test_permanent_failure_yields_error_response(self):
        _register("serving-flaky", lambda v: _FlakyPPM(v, max_order=3))
        _FlakyPPM.failures["remaining"] = 10**9
        config = MultiCastConfig(num_samples=2, model="serving-flaky")
        with ForecastEngine(
            num_workers=2, retry=RetryPolicy(max_attempts=2, base_delay=0.0)
        ) as engine:
            response = engine.forecast(ForecastRequest(HISTORY, 4, config=config))
            assert not response.ok
            assert response.output is None and response.error
            assert engine.metrics.counter("requests_failed").value == 1
        _FlakyPPM.failures["remaining"] = 0

    def test_deadline_expiry_degrades_to_partial_ensemble(self):
        _register("serving-slow", lambda v: _SlowPPM(v, max_order=3))
        config = MultiCastConfig(num_samples=3, model="serving-slow", seed=0)
        # One worker serialises the slow draws: the first (~0.3 s) finishes
        # inside the 0.45 s deadline, the remaining two are abandoned.
        with ForecastEngine(num_workers=1, cache=ForecastCache(0)) as engine:
            response = engine.forecast(
                ForecastRequest(HISTORY, 4, config=config, deadline_seconds=0.45)
            )
            assert response.ok and response.partial
            assert response.output.metadata["completed_samples"] < 3
            assert response.output.values.shape == (4, 2)
            assert np.isfinite(response.output.values).all()
            assert engine.metrics.counter("samples_abandoned").value >= 1
            assert engine.metrics.counter("requests_partial").value == 1

    def test_deadline_with_no_completed_samples_is_an_error(self):
        _register("serving-slow", lambda v: _SlowPPM(v, max_order=3))
        config = MultiCastConfig(num_samples=2, model="serving-slow", seed=1)
        with ForecastEngine(num_workers=1, cache=ForecastCache(0)) as engine:
            response = engine.forecast(
                ForecastRequest(HISTORY, 4, config=config, deadline_seconds=0.05)
            )
            assert not response.ok
            assert "deadline" in response.error
            assert engine.metrics.counter("requests_deadline_exceeded").value == 1

    def test_partial_results_are_not_cached(self):
        _register("serving-slow", lambda v: _SlowPPM(v, max_order=3))
        config = MultiCastConfig(num_samples=3, model="serving-slow", seed=0)
        with ForecastEngine(num_workers=1) as engine:
            first = engine.forecast(
                ForecastRequest(HISTORY, 4, config=config, deadline_seconds=0.45)
            )
            assert first.partial
            assert len(engine.cache) == 0

    def test_metrics_snapshot_includes_stages_and_cache(self):
        with ForecastEngine(num_workers=2) as engine:
            engine.forecast(
                ForecastRequest(HISTORY, 4, config=MultiCastConfig(num_samples=2))
            )
            snapshot = engine.metrics_snapshot()
        assert snapshot["requests_total"]["value"] == 1
        assert snapshot["stage_generate_seconds"]["count"] == 1
        for quantile in ("p50", "p95", "p99"):
            assert quantile in snapshot["request_seconds"]
        assert snapshot["cache"]["misses"] == 1

    def test_closed_engine_rejects_work(self):
        engine = ForecastEngine(num_workers=1)
        engine.close()
        with pytest.raises(ConfigError):
            engine.forecast(ForecastRequest(HISTORY, 4))

    def test_request_validation(self):
        with pytest.raises(ConfigError):
            ForecastRequest(HISTORY, 0)
        with pytest.raises(ConfigError):
            ForecastRequest(HISTORY, 5, deadline_seconds=0.0)
        with pytest.raises(ConfigError):
            ForecastEngine(num_workers=0)


class TestBacktestThroughEngine:
    def test_engine_backtest_matches_sequential(self):
        from repro.evaluation import rolling_origin_evaluation

        dataset = synthetic_multivariate(n=120, num_dims=2, seed=3)
        spec = ForecastSpec(num_samples=2)
        sequential = rolling_origin_evaluation(
            "multicast-di", dataset, horizon=8, num_windows=2, spec=spec
        )
        with ForecastEngine(num_workers=3) as engine:
            served = rolling_origin_evaluation(
                "multicast-di", dataset, horizon=8, num_windows=2,
                spec=spec, engine=engine,
            )
            # A second run over the same windows is answered from cache.
            rerun = rolling_origin_evaluation(
                "multicast-di", dataset, horizon=8, num_windows=2,
                spec=spec, engine=engine,
            )
            assert engine.metrics.counter("cache_hits").value == 2
        assert served.window_rmse == sequential.window_rmse
        assert rerun.window_rmse == sequential.window_rmse

    def test_non_multicast_method_ignores_engine(self):
        from repro.evaluation import rolling_origin_evaluation

        dataset = synthetic_multivariate(n=100, num_dims=1, seed=4)
        with ForecastEngine(num_workers=1) as engine:
            result = rolling_origin_evaluation(
                "naive", dataset, horizon=5, num_windows=2, engine=engine
            )
            assert engine.metrics.counter("requests_total").value == 0
        assert result.num_windows == 2


class TestForecasterTimings:
    def test_timings_cover_all_stages_and_sum_to_wall(self):
        output = _output()
        for stage in ("scale", "multiplex", "generate", "demultiplex", "aggregate"):
            assert stage in output.timings
            assert output.timings[stage] >= 0.0
        assert output.wall_seconds == pytest.approx(sum(output.timings.values()))

    def test_deseasonalize_stage_appears_when_enabled(self):
        config = MultiCastConfig(num_samples=2, deseasonalize=12)
        t = np.arange(120.0)
        history = np.stack(
            [np.sin(2 * np.pi * t / 12) + 5, np.cos(2 * np.pi * t / 12) + 5],
            axis=1,
        )
        output = MultiCastForecaster().forecast(
            ForecastSpec.from_config(config, series=history, horizon=6)
        )
        assert "deseasonalize" in output.timings

"""Lockstep batched decoding and the ForecastSpec API.

Pins the tentpole contracts of the batched execution path:

* the three execution modes (``batched``, ``pooled``, ``sequential``) are
  **bit-identical** at the forecaster level, across schemes, SAX, and
  cold/warm ingest caches;
* the :class:`~repro.llm.batch.BatchedDecoder` equals per-stream
  sequential decoding token for token and log-prob for log-prob on every
  registered backend preset;
* scheduling behaviour — heterogeneous budgets, retirement, early stop —
  matches its documentation;
* :class:`~repro.core.ForecastSpec` validates eagerly, stays frozen, and
  round-trips through the serving layer (engine, request, manifest, CLI).
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import ForecastSpec, MultiCastForecaster, SaxConfig
from repro.exceptions import ConfigError, DataError, GenerationError
from repro.llm import (
    BatchedDecoder,
    IngestStateCache,
    SetConstraint,
    available_models,
    child_seeds,
    get_model,
)
from repro.observability import read_ledger
from repro.serving import ForecastEngine, ForecastRequest, load_manifest

EXECUTIONS = ("batched", "pooled", "sequential")


def _history(n=36, d=2):
    t = np.arange(n, dtype=float)
    columns = [np.sin(t / 3.0) * 5.0 + 20.0, np.cos(t / 4.0) * 3.0 + 10.0]
    return np.stack(columns[:d], axis=1)


def _spec(**overrides):
    settings = dict(
        series=_history(), horizon=4, scheme="di", num_samples=3, seed=7
    )
    settings.update(overrides)
    return ForecastSpec(**settings)


class TestForecasterEquivalence:
    """All three execution modes produce byte-identical outputs."""

    @pytest.mark.parametrize("scheme", ["di", "vi", "vc"])
    @pytest.mark.parametrize("quantized", [False, True])
    def test_modes_bit_identical(self, scheme, quantized):
        sax = SaxConfig(segment_length=4, alphabet_size=5) if quantized else None
        spec = _spec(scheme=scheme, sax=sax)
        outputs = {
            mode: MultiCastForecaster().forecast(spec.replace(execution=mode))
            for mode in EXECUTIONS
        }
        reference = outputs["sequential"]
        for mode in ("batched", "pooled"):
            output = outputs[mode]
            assert output.values.tobytes() == reference.values.tobytes()
            assert output.samples.tobytes() == reference.samples.tobytes()
            assert output.generated_tokens == reference.generated_tokens
            assert output.simulated_seconds == reference.simulated_seconds
        assert outputs["batched"].metadata["execution"] == "batched"
        assert outputs["sequential"].metadata["execution"] == "sequential"

    def test_batched_warm_cache_identity(self):
        spec = _spec(scheme="vi")
        reference = MultiCastForecaster().forecast(
            spec.replace(execution="sequential")
        )
        cache = IngestStateCache()
        cold = MultiCastForecaster(state_cache=cache).forecast(spec)
        warm = MultiCastForecaster(state_cache=cache).forecast(spec)
        assert cold.metadata["ingest"] == "miss"
        assert warm.metadata["ingest"] == "fork"
        assert warm.metadata["ingested_tokens"] == 0
        for output in (cold, warm):
            assert output.values.tobytes() == reference.values.tobytes()
            assert output.samples.tobytes() == reference.samples.tobytes()

    @pytest.mark.parametrize("temperature", [0.0, 1.5])
    def test_temperature_extremes_stay_identical(self, temperature):
        # Greedy decoding (temperature 0) consumes no RNG at all; a hot
        # temperature splits the batch into many groups.  Both ends must
        # still match the sequential path exactly.
        spec = _spec(temperature=temperature, num_samples=4)
        batched = MultiCastForecaster().forecast(spec)
        sequential = MultiCastForecaster().forecast(
            spec.replace(execution="sequential")
        )
        assert batched.samples.tobytes() == sequential.samples.tobytes()

    def test_batched_metadata_reports_occupancy(self):
        output = MultiCastForecaster().forecast(_spec())
        occupancy = output.metadata["batch_occupancy"]
        groups = output.metadata["batch_groups"]
        assert len(occupancy) == len(groups) > 0
        assert occupancy[0] == 3  # every stream live at step one
        # Never more distinct model states than live streams.
        assert all(g <= o for g, o in zip(groups, occupancy))


class TestDecoderEquivalence:
    """BatchedDecoder == per-stream sequential decode on every preset."""

    CONTEXT = [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5] * 2
    BUDGET = 6

    @pytest.mark.parametrize("preset", available_models())
    def test_presets_bit_identical(self, preset):
        llm = get_model(preset, vocab_size=8)
        seeds = child_seeds(np.random.default_rng(11), 4)
        constraint = SetConstraint({1, 2, 3, 4, 5})
        sequential = [
            llm.generate(
                self.CONTEXT,
                self.BUDGET,
                np.random.default_rng(seed),
                constraint=constraint,
            )
            for seed in seeds
        ]
        decoder = llm.generate_batch(
            self.CONTEXT,
            self.BUDGET,
            [np.random.default_rng(seed) for seed in seeds],
            constraint=constraint,
        )
        for result, expected in zip(decoder.results, sequential):
            assert result.tokens == expected.tokens
            assert result.log_probs == expected.log_probs
        assert decoder.steps == self.BUDGET
        assert not decoder.stopped

    def test_heterogeneous_budgets_retire_streams(self):
        llm = get_model("llama2-7b-sim", vocab_size=8)
        session = llm.prefill(self.CONTEXT)
        seeds = [101, 202, 303]
        budgets = [0, 3, 6]
        decoder = BatchedDecoder(
            session.model,
            [np.random.default_rng(seed) for seed in seeds],
            budgets,
        )
        decoder.decode()
        for result, budget, seed in zip(decoder.results, budgets, seeds):
            assert len(result.tokens) == budget
            expected = llm.generate(
                self.CONTEXT, budget, np.random.default_rng(seed)
            )
            assert result.tokens == expected.tokens
        # Zero-budget stream retires before the first scoring pass; the
        # three-token stream drops out mid-decode.
        assert decoder.occupancy[0] == 2
        assert decoder.occupancy == sorted(decoder.occupancy, reverse=True)
        assert decoder.steps == max(budgets)

    def test_stop_keeps_retired_abandons_live(self):
        llm = get_model("llama2-7b-sim", vocab_size=8)
        session = llm.prefill(self.CONTEXT)
        steps_allowed = 3
        polls = iter(range(1000))
        decoder = BatchedDecoder(
            session.model,
            [np.random.default_rng(seed) for seed in (1, 2)],
            [2, 9],
        )
        decoder.decode(stop=lambda: next(polls) >= steps_allowed)
        assert decoder.stopped
        assert len(decoder.results[0].tokens) == 2  # finished before the stop
        assert decoder.results[1] is None  # abandoned mid-flight
        assert decoder.steps == steps_allowed

    def test_session_left_untouched(self):
        # The decoder forks the session model up front: one prefill can
        # feed many decodes (and other consumers) without interference.
        llm = get_model("llama2-7b-sim", vocab_size=8)
        session = llm.prefill(self.CONTEXT)
        first = llm.generate_batch(
            self.CONTEXT,
            4,
            [np.random.default_rng(5)],
            session=session,
        )
        second = llm.generate_batch(
            self.CONTEXT,
            4,
            [np.random.default_rng(5)],
            session=session,
        )
        assert first.results[0].tokens == second.results[0].tokens

    def test_constructor_rejects_bad_batches(self):
        llm = get_model("llama2-7b-sim", vocab_size=8)
        session = llm.prefill(self.CONTEXT)
        with pytest.raises(GenerationError, match="at least one stream"):
            BatchedDecoder(session.model, [], 5)
        with pytest.raises(GenerationError, match="token budgets"):
            BatchedDecoder(
                session.model, [np.random.default_rng(0)], [1, 2]
            )
        with pytest.raises(GenerationError, match=">= 0"):
            BatchedDecoder(session.model, [np.random.default_rng(0)], [-1])


class TestForecastSpec:
    """The request object validates eagerly and stays immutable."""

    def test_frozen(self):
        spec = _spec()
        with pytest.raises(AttributeError):
            spec.horizon = 10

    def test_template_requires_series(self):
        template = ForecastSpec(num_samples=2)
        with pytest.raises(ConfigError, match="template"):
            MultiCastForecaster().forecast(template)

    def test_bad_execution_rejected(self):
        with pytest.raises(ConfigError, match="execution"):
            ForecastSpec(execution="warp")

    def test_bad_pipeline_field_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            ForecastSpec(scheme="nope")
        with pytest.raises(ConfigError):
            _spec().replace(num_samples=0)

    def test_kwargs_alongside_spec_rejected(self):
        with pytest.raises(ConfigError, match="inside the ForecastSpec"):
            MultiCastForecaster().forecast(_spec(), horizon=3)

    def test_sax_dict_coerced(self):
        spec = _spec(sax={"segment_length": 4, "alphabet_size": 5})
        assert isinstance(spec.sax, SaxConfig)
        assert spec.sax.segment_length == 4

    def test_series_is_read_only(self):
        spec = _spec()
        with pytest.raises(ValueError):
            spec.series[0, 0] = 99.0

    def test_data_errors_still_raised_at_forecast_time(self):
        short = ForecastSpec(series=[1.0, 2.0, 3.0], horizon=2)
        with pytest.raises(DataError, match="too short"):
            MultiCastForecaster().forecast(short)

    def test_create_warns_on_legacy_alias(self):
        with pytest.warns(DeprecationWarning, match="ForecastSpec"):
            spec = ForecastSpec.create(series=_history(), horizon=4, n_samples=2)
        assert spec.num_samples == 2
        with pytest.raises(ConfigError, match="n_samples"):
            ForecastSpec.create(n_samples=2, num_samples=3)


class TestServingIntegration:
    """Specs flow through engine, request envelope, manifest and ledger."""

    def test_engine_accepts_spec_and_tracks_occupancy(self, tmp_path):
        spec = _spec()
        ledger = tmp_path / "runs.jsonl"
        with ForecastEngine(num_workers=2, ledger=ledger) as engine:
            response = engine.forecast(spec)
            submitted = engine.submit(spec.replace(seed=8)).result()
            snapshot = engine.metrics_snapshot()
        direct = MultiCastForecaster().forecast(spec)
        assert response.ok
        assert response.output.values.tobytes() == direct.values.tobytes()
        assert submitted.ok
        # One observation per decode step across the two served requests.
        assert snapshot["decode_batch_occupancy"]["count"] > 0
        assert snapshot["decode_batch_occupancy"]["max"] <= spec.num_samples
        records = read_ledger(ledger)
        assert [r["execution"] for r in records] == ["batched", "batched"]

    def test_request_from_spec_round_trips(self):
        spec = _spec(execution="pooled")
        request = ForecastRequest.from_spec(
            spec, deadline_seconds=30.0, name="demo"
        )
        assert request.execution == "pooled"
        assert request.horizon == spec.horizon
        assert request.effective_seed == spec.seed
        assert request.deadline_seconds == 30.0
        assert np.array_equal(request.history, spec.series)
        with pytest.raises(ConfigError, match="template"):
            ForecastRequest.from_spec(ForecastSpec())

    def test_manifest_parses_execution_and_num_samples(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({
            "jobs": [
                {"name": "a", "dataset": "gas_rate", "horizon": 4,
                 "num_samples": 2, "execution": "batched"},
                {"name": "b", "dataset": "gas_rate", "horizon": 4},
            ]
        }))
        jobs = load_manifest(path)
        assert jobs[0].execution == "batched"
        assert jobs[0].config.num_samples == 2
        assert jobs[1].execution == "pooled"  # serving default
        request = jobs[0].to_request(_history())
        assert request.execution == "batched"

    def test_manifest_rejects_bad_execution(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([
            {"dataset": "gas_rate", "horizon": 4, "execution": "warp"}
        ]))
        with pytest.raises(ConfigError, match="execution"):
            load_manifest(path)

    def test_cli_execution_flag_is_value_neutral(self, tmp_path, capsys):
        outputs = {}
        for mode in ("batched", "sequential"):
            out_path = tmp_path / f"{mode}.csv"
            code = main([
                "forecast", "--dataset", "gas_rate", "--num-samples", "2",
                "--horizon", "5", "--execution", mode,
                "--output", str(out_path),
            ])
            assert code == 0
            outputs[mode] = out_path.read_text()
        capsys.readouterr()
        assert outputs["batched"] == outputs["sequential"]

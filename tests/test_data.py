"""Tests for the dataset container, generators, and CSV persistence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    Dataset,
    electricity,
    gas_rate,
    load_csv,
    load_paper_datasets,
    save_csv,
    synthetic_multivariate,
    weather,
)
from repro.exceptions import DataError


class TestDataset:
    def _make(self):
        return Dataset(
            name="toy",
            values=np.arange(20.0).reshape(10, 2),
            dim_names=("a", "b"),
        )

    def test_shapes(self):
        ds = self._make()
        assert ds.num_timestamps == 10
        assert ds.num_dims == 2
        assert len(ds) == 10

    def test_univariate_input_promoted_to_2d(self):
        ds = Dataset("u", np.arange(5.0), ("x",))
        assert ds.values.shape == (5, 1)

    def test_values_are_read_only(self):
        ds = self._make()
        with pytest.raises(ValueError):
            ds.values[0, 0] = 99.0

    def test_dimension_by_index_and_name(self):
        ds = self._make()
        assert np.array_equal(ds.dimension(1), ds.dimension("b"))

    def test_unknown_dimension_raises(self):
        ds = self._make()
        with pytest.raises(DataError):
            ds.dimension("z")
        with pytest.raises(DataError):
            ds.dimension(5)

    def test_select_dims(self):
        ds = self._make()
        sub = ds.select_dims(["b"])
        assert sub.num_dims == 1
        assert sub.dim_names == ("b",)
        assert np.array_equal(sub.values[:, 0], ds.dimension("b"))

    def test_head(self):
        ds = self._make()
        assert ds.head(4).num_timestamps == 4
        with pytest.raises(DataError):
            ds.head(1)
        with pytest.raises(DataError):
            ds.head(11)

    def test_train_test_split_sizes(self):
        ds = self._make()
        history, future = ds.train_test_split(test_fraction=0.2)
        assert history.shape == (8, 2)
        assert future.shape == (2, 2)
        assert np.array_equal(np.vstack([history, future]), ds.values)

    def test_split_fraction_validated(self):
        ds = self._make()
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(DataError):
                ds.train_test_split(bad)

    def test_nan_values_rejected(self):
        with pytest.raises(DataError):
            Dataset("bad", np.array([[1.0], [np.nan]]), ("x",))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset("bad", np.zeros((5, 2)), ("only",))

    def test_too_short_rejected(self):
        with pytest.raises(DataError):
            Dataset("bad", np.zeros((1, 2)), ("a", "b"))

    def test_summary_row_matches_table_i(self):
        row = gas_rate().summary_row()
        assert row == {"dataset": "gas_rate", "dimensions": 2, "length": 296}


class TestGenerators:
    def test_table_i_shapes(self):
        """The generators reproduce the paper's Table I exactly."""
        expected = {
            "gas_rate": (296, 2),
            "electricity": (242, 3),
            "weather": (217, 4),
        }
        for ds in load_paper_datasets():
            assert ds.values.shape == expected[ds.name]

    def test_deterministic_for_fixed_seed(self):
        assert np.array_equal(gas_rate(seed=3).values, gas_rate(seed=3).values)
        assert not np.array_equal(gas_rate(seed=3).values, gas_rate(seed=4).values)

    def test_gas_rate_scales(self):
        ds = gas_rate()
        gas = ds.dimension("GasRate")
        co2 = ds.dimension("CO2")
        assert -3.0 <= gas.min() and gas.max() <= 3.0
        assert 40.0 < co2.mean() < 60.0

    def test_gas_rate_lagged_negative_correlation(self):
        """The transfer function makes CO2 respond negatively to lagged gas."""
        ds = gas_rate()
        gas = ds.dimension("GasRate")
        co2 = ds.dimension("CO2")
        lag = 4
        corr = np.corrcoef(gas[:-lag], co2[lag:])[0, 1]
        assert corr < -0.4

    def test_electricity_scale_separation(self):
        ds = electricity()
        hufl = ds.dimension("HUFL")
        hull = ds.dimension("HULL")
        assert np.abs(hufl).mean() > 2.0 * np.abs(hull).mean()

    def test_electricity_loads_are_correlated(self):
        ds = electricity()
        corr = np.corrcoef(ds.dimension("HUFL"), ds.dimension("HULL"))[0, 1]
        assert corr > 0.6

    def test_electricity_ot_tracks_load(self):
        ds = electricity()
        corr = np.corrcoef(ds.dimension("HUFL"), ds.dimension("OT"))[0, 1]
        assert corr > 0.3

    def test_weather_physical_relations(self):
        ds = weather()
        t = ds.dimension("Tlog")
        vpmax = ds.dimension("VPmax")
        tpot = ds.dimension("Tpot")
        # Magnus formula: VPmax is a deterministic function of T.
        expected_vpmax = 6.1094 * np.exp(17.625 * t / (t + 243.04))
        assert np.allclose(vpmax, expected_vpmax)
        # Tpot sits a little above T + 273.15.
        assert np.all(np.abs(tpot - (t + 273.15)) < 6.0)

    def test_weather_dimensions_strongly_correlated(self):
        ds = weather()
        t = ds.dimension("Tlog")
        for name in ("H2OC", "VPmax", "Tpot"):
            corr = np.corrcoef(t, ds.dimension(name))[0, 1]
            assert corr > 0.5, name

    def test_synthetic_coupling_produces_correlation(self):
        ds = synthetic_multivariate(n=300, num_dims=3, coupling=0.8, seed=1)
        corr = np.corrcoef(ds.values[:, 0], ds.values[:, 1])[0, 1]
        assert corr > 0.5

    def test_synthetic_validation(self):
        with pytest.raises(DataError):
            synthetic_multivariate(num_dims=0)
        with pytest.raises(DataError):
            synthetic_multivariate(n=4)


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        ds = gas_rate(n=30)
        path = tmp_path / "gas.csv"
        save_csv(ds, path)
        loaded = load_csv(path, name="gas_rate")
        assert loaded.dim_names == ds.dim_names
        assert np.allclose(loaded.values, ds.values, atol=1e-9)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_csv(tmp_path / "nope.csv")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_ragged_row_raises_with_line_number(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DataError, match=":3"):
            load_csv(path)

    def test_non_numeric_cell_raises(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("a\n1\nfoo\n")
        with pytest.raises(DataError):
            load_csv(path)


@given(
    st.integers(min_value=8, max_value=200),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_synthetic_generator_contract_property(n, num_dims, seed):
    ds = synthetic_multivariate(n=n, num_dims=num_dims, seed=seed)
    assert ds.values.shape == (n, num_dims)
    assert np.isfinite(ds.values).all()

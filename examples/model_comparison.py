#!/usr/bin/env python
"""Backend model comparison: which (simulated) LLM should power MultiCast?

Reproduces the paper's Section IV-B decision in miniature: run the same
MultiCast pipeline over every registered backend preset and compare accuracy
and simulated inference time, then draw the two main contenders against the
actual series (the paper's Figure 2).

Run:  python examples/model_comparison.py
"""

from repro.core import ForecastSpec, MultiCastForecaster
from repro.data import gas_rate
from repro.evaluation import ascii_plot, format_table
from repro.llm import available_models
from repro.metrics import rmse


def main() -> None:
    dataset = gas_rate()
    history, future = dataset.train_test_split(test_fraction=0.2)
    horizon = len(future)

    rows = []
    overlays = {"actual": future[:, 0]}
    for model_name in available_models():
        spec = ForecastSpec(
            series=history, horizon=horizon,
            scheme="vi", num_samples=5, model=model_name, seed=0,
        )
        output = MultiCastForecaster().forecast(spec)
        rows.append([
            model_name,
            rmse(future[:, 0], output.values[:, 0]),
            rmse(future[:, 1], output.values[:, 1]),
            f"{output.simulated_seconds:.0f}s",
        ])
        if model_name in ("llama2-7b-sim", "phi2-2.7b-sim"):
            overlays[model_name] = output.values[:, 0]
        print(f"  ran {model_name}")
    print()
    print(format_table(
        ["backend", "GasRate RMSE", "CO2 RMSE", "sim time"],
        rows,
        title="Gas Rate, MultiCast (VI): backend model comparison (Table III)",
    ))
    print()
    print(ascii_plot(overlays, title="Figure 2: the two contenders vs actual"))
    print("\nThe phi2 stand-in tracks the trend but sits offset above the"
          "\nseries - the failure mode the paper reports for Phi-2 (Fig. 2b).")


if __name__ == "__main__":
    main()

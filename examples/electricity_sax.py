#!/usr/bin/env python
"""SAX quantization on the electricity dataset: the cost/accuracy dial.

The paper's Section III-B argument in one script: raw digit serialisation
spends ``d * b + 1`` tokens per timestamp, while SAX spends one symbol per
segment per dimension — an order of magnitude fewer tokens, hence an order
of magnitude less (simulated) inference time and hosted-API cost, for a
moderate accuracy loss.  This sweep prints the whole trade-off curve.

Run:  python examples/electricity_sax.py
"""

from repro.core import ForecastSpec, MultiCastForecaster, SaxConfig
from repro.data import electricity
from repro.evaluation import format_table
from repro.llm import TokenCostModel
from repro.metrics import rmse


def main() -> None:
    dataset = electricity()
    history, future = dataset.train_test_split(test_fraction=0.2)
    horizon = len(future)
    pricing = TokenCostModel(usd_per_1k_tokens=0.002)

    configurations: list[tuple[str, SaxConfig | None]] = [("raw digits", None)]
    configurations += [
        (f"SAX w={w} a=5", SaxConfig(segment_length=w, alphabet_size=5))
        for w in (3, 6, 9)
    ]

    rows = []
    for label, sax in configurations:
        spec = ForecastSpec(series=history, horizon=horizon,
                            scheme="di", num_samples=5, sax=sax, seed=0)
        output = MultiCastForecaster().forecast(spec)
        mean_rmse = sum(
            rmse(future[:, k], output.values[:, k]) for k in range(dataset.num_dims)
        ) / dataset.num_dims
        rows.append([
            label,
            output.total_tokens,
            f"{output.simulated_seconds:.0f}s",
            f"${1000 * pricing.dollars(output.prompt_tokens, output.generated_tokens):.2f}",
            mean_rmse,
        ])
        print(f"  ran {label}")
    print()
    print(format_table(
        ["configuration", "tokens", "sim time", "cost/1k runs", "mean RMSE"],
        rows,
        title=f"Electricity ({dataset.num_dims} dims, horizon {horizon}): "
              "SAX compression trade-off",
    ))
    print("\nTakeaway (paper Tables VIII-IX): longer SAX segments cut tokens,"
          "\ntime, and cost near-linearly.  Accuracy moves non-monotonically:"
          "\nmild compression can even help (quantization denoises the stream),"
          "\nwhile aggressive segments blur the signal and the error climbs.")


if __name__ == "__main__":
    main()

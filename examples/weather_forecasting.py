#!/usr/bin/env python
"""Multivariate weather forecasting: all multiplexing schemes vs baselines.

The weather dataset's four dimensions (air temperature, water-vapour
concentration, saturation vapour pressure, potential temperature) are
physically coupled — the setting the paper argues multivariate multiplexing
exists for.  This example runs every MultiCast scheme plus the classical
baselines and prints a Table-VI-style comparison.

Run:  python examples/weather_forecasting.py
"""

import numpy as np

from repro.data import weather
from repro.evaluation import evaluate_method, format_table


def main() -> None:
    dataset = weather()
    print(f"{dataset.name}: {dataset.num_timestamps} timestamps x "
          f"{dataset.num_dims} dims {dataset.dim_names}")
    correlations = np.corrcoef(dataset.values.T)
    print("inter-dimensional correlations with Tlog:",
          {name: round(float(correlations[0, k]), 2)
           for k, name in enumerate(dataset.dim_names)})
    print()

    methods = [
        ("multicast-di", {"num_samples": 5}),
        ("multicast-vi", {"num_samples": 5}),
        ("multicast-vc", {"num_samples": 5}),
        ("multicast-bi", {"num_samples": 5}),  # rotation extension
        ("llmtime", {"num_samples": 5}),
        ("arima", {}),
        ("lstm", {}),
        ("naive", {}),
    ]
    rows = []
    for method, options in methods:
        result = evaluate_method(method, dataset, seed=0, **options)
        rows.append([
            method,
            *(result.rmse_per_dim[name] for name in dataset.dim_names),
            f"{result.reported_seconds:.0f}s",
        ])
        print(f"  ran {method}")
    print()
    print(format_table(
        ["method", *dataset.dim_names, "time"],
        rows,
        title="Weather: per-dimension forecast RMSE (last 20% held out)",
    ))


if __name__ == "__main__":
    main()

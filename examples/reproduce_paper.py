#!/usr/bin/env python
"""One-command reproduction: every table and figure of the paper.

Runs Tables I, III-IX and Figures 2-8 with the paper's default parameters,
prints each in the paper's layout, writes everything under ``results/``,
and finishes with the side-by-side paper-vs-measured report for Table IV.

This is the script form of ``pytest benchmarks/ --benchmark-only`` without
the benchmarking machinery — useful for a quick end-to-end look.

Run:  python examples/reproduce_paper.py          (~2 minutes)
      python examples/reproduce_paper.py --fast   (2 samples, ~40 seconds)
"""

import argparse
import sys
import time
from pathlib import Path

from repro import experiments
from repro.experiments import PAPER_TABLE_IV, comparison_report

RESULTS = Path(__file__).resolve().parent.parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="2 samples per forecast instead of the paper's 5")
    args = parser.parse_args(argv)
    num_samples = 2 if args.fast else 5
    RESULTS.mkdir(exist_ok=True)

    tables = [
        ("table_i", lambda: experiments.table_i()),
        ("table_iii", lambda: experiments.table_iii(num_samples=num_samples)),
        ("table_iv", lambda: experiments.table_iv(num_samples=num_samples)),
        ("table_v", lambda: experiments.table_v(num_samples=num_samples)),
        ("table_vi", lambda: experiments.table_vi(num_samples=num_samples)),
        ("table_vii", lambda: experiments.table_vii()),
        ("table_viii", lambda: experiments.table_viii(num_samples=num_samples)),
        ("table_ix", lambda: experiments.table_ix(num_samples=num_samples)),
    ]
    figures = [
        ("figure_2", experiments.figure_2),
        ("figure_3", experiments.figure_3),
        ("figure_4", experiments.figure_4),
        ("figure_5", experiments.figure_5),
        ("figure_6", experiments.figure_6),
        ("figure_7", experiments.figure_7),
        ("figure_8", experiments.figure_8),
    ]

    measured_table_iv = None
    for name, build in tables:
        started = time.perf_counter()
        table = build()
        if name == "table_iv":
            measured_table_iv = table
        text = table.format()
        print(f"\n{text}\n  [{time.perf_counter() - started:.1f}s]")
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        table.save_json(RESULTS / f"{name}.json")

    for name, build in figures:
        started = time.perf_counter()
        figure = build(num_samples=num_samples)
        chart = figure.render()
        print(f"\n{chart}\n  [{time.perf_counter() - started:.1f}s]")
        (RESULTS / f"{name}.txt").write_text(chart + "\n")
        figure.save_csv(RESULTS / f"{name}.csv")

    if measured_table_iv is not None:
        report = comparison_report(
            measured_table_iv, PAPER_TABLE_IV, ["GasRate", "CO2"]
        )
        print(f"\n{report}")
        (RESULTS / "paper_vs_measured_table_iv.txt").write_text(report + "\n")

    print(f"\nall artefacts written under {RESULTS}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())

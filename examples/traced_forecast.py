#!/usr/bin/env python
"""Observability end to end: span trees and the run ledger.

Serves a small batch of gas-rate forecasts through a traced
``ForecastEngine``, prints the first request's full span tree (serving
envelope → pipeline stages → per-sample draws → LLM phases), then reads
the JSONL run ledger back and prints the aggregate report — the same
output as ``repro-multicast ledger summarize``.

Run:  python examples/traced_forecast.py
"""

import tempfile
from pathlib import Path

from repro.core import MultiCastConfig
from repro.data import gas_rate
from repro.observability import (
    SpanCollector,
    Tracer,
    render_span_tree,
    stage_timings,
    summarize_ledger,
)
from repro.serving import ForecastEngine, ForecastRequest


def main() -> None:
    dataset = gas_rate()
    history, future = dataset.train_test_split(test_fraction=0.2)
    config = MultiCastConfig(scheme="vi", num_samples=3, seed=0)

    ledger_path = Path(tempfile.mkdtemp()) / "runs.jsonl"
    collector = SpanCollector()
    with ForecastEngine(
        num_workers=4, tracer=Tracer(collector), ledger=ledger_path
    ) as engine:
        responses = engine.forecast_batch(
            [
                ForecastRequest(
                    history, horizon=len(future), config=config,
                    seed=run, name=f"gas-{run}",
                )
                for run in range(3)
            ]
        )
        # Same request again: served from the cache, still traced/ledgered.
        repeat = engine.forecast(
            ForecastRequest(history, horizon=len(future), config=config,
                            seed=0, name="gas-0-again")
        )

    for response in responses:
        print(response.summary())
    print(repeat.summary())

    first = responses[0].trace
    print("\n=== span tree: gas-0 ===")
    print(render_span_tree(first))

    forecast_span = first.find("forecast")
    print("\nroot duration == wall_seconds:",
          forecast_span.duration == responses[0].output.wall_seconds)
    print("stage timings from spans:", {
        stage: round(seconds, 4)
        for stage, seconds in stage_timings(forecast_span).items()
    })

    print(f"\n=== ledger summary ({ledger_path}) ===")
    print(summarize_ledger(ledger_path).format())


if __name__ == "__main__":
    main()

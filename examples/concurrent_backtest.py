#!/usr/bin/env python
"""Serving layer walkthrough: one engine, many forecasts.

The :class:`~repro.serving.ForecastEngine` turns the paper's single
``forecast()`` call into a concurrent service — sample draws fan out across
a worker pool, identical requests are answered from a content-addressed
cache, and every request carries a deadline and retry budget.  This script
shows the three entry points an adopting user touches:

1. **Direct requests** — submit a batch of :class:`ForecastRequest` objects
   and read bit-identical results back (same seed => same forecast as the
   sequential forecaster);
2. **Engine-backed backtest** — pass ``engine=`` to
   ``rolling_origin_evaluation`` so windows run concurrently and re-runs
   hit the cache;
3. **Observability** — dump the engine's metrics registry (request latency
   percentiles, per-stage timings, cache hit rate) as JSON.

Run:  python examples/concurrent_backtest.py
"""

import json

import numpy as np

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster
from repro.data import gas_rate
from repro.evaluation import rolling_origin_evaluation
from repro.serving import ForecastEngine, ForecastRequest


def main() -> None:
    dataset = gas_rate()
    history = np.asarray(dataset.values)
    horizon = 12

    with ForecastEngine(num_workers=4) as engine:
        # 1 -- a batch of requests: two schemes plus a deliberate repeat
        configs = {
            "di": MultiCastConfig(scheme="di", num_samples=5, seed=0),
            "vc": MultiCastConfig(scheme="vc", num_samples=5, seed=0),
        }
        requests = [
            ForecastRequest(history, horizon, config=cfg, name=name)
            for name, cfg in configs.items()
        ]
        requests.append(
            ForecastRequest(history, horizon, config=configs["di"], name="di-again")
        )
        for response in engine.forecast_batch(requests):
            print(response.summary())

        # served results match the sequential forecaster exactly
        sequential = MultiCastForecaster().forecast(
            ForecastSpec.from_config(configs["di"], series=history, horizon=horizon)
        )
        served = engine.forecast(
            ForecastRequest(history, horizon, config=configs["di"])
        )
        assert np.array_equal(served.output.values, sequential.values)
        print("\nengine forecast == sequential forecast (same seed): verified")

        # 2 -- backtest through the engine: windows run concurrently,
        #      and the second run is answered from cache
        for label in ("cold", "warm"):
            backtest = rolling_origin_evaluation(
                "multicast-di", dataset, horizon=horizon, num_windows=3,
                spec=ForecastSpec(num_samples=5), engine=engine,
            )
            mean = backtest.mean_rmse()
            print(f"\n{label} backtest RMSE: "
                  + ", ".join(f"{k}={v:.3f}" for k, v in mean.items()))

        # 3 -- what did all of that cost?
        snapshot = engine.metrics_snapshot()
        print("\nengine metrics:")
        print(f"  requests        {snapshot['requests_total']['value']}")
        print(f"  cache hit rate  {snapshot['cache']['hit_rate']:.0%}")
        print(f"  request p95     {snapshot['request_seconds']['p95'] * 1000:.1f} ms")
        print("\nfull registry snapshot (as written by --metrics-out):")
        print(json.dumps(
            {k: v for k, v in snapshot.items() if k.startswith("stage_")},
            indent=2,
        ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Beyond forecasting: zero-shot imputation, anomaly and change-point detection.

The paper's conclusion names these as the next zero-shot applications of the
same serialisation + in-context machinery; this repo implements all three
(see ``repro.tasks``).  The demo corrupts a clean periodic signal and shows
each task recovering structure with no training whatsoever.

Run:  python examples/anomaly_and_imputation.py
"""

import numpy as np

from repro.core import MultiCastConfig
from repro.evaluation import ascii_plot
from repro.tasks import detect_anomalies, detect_changepoints, impute


def main() -> None:
    rng = np.random.default_rng(0)
    t = np.arange(220)
    clean = np.sin(2 * np.pi * t / 20.0)
    config = MultiCastConfig(num_samples=5, seed=0)

    # --- imputation ---------------------------------------------------------
    mask = np.zeros(220, bool)
    mask[100:112] = True
    corrupted = clean.copy()
    corrupted[mask] = 0.0
    filled = impute(corrupted, mask, config)
    gap_error = float(np.sqrt(np.mean((filled[mask] - clean[mask]) ** 2)))
    print(f"imputation: 12-step gap filled with RMSE {gap_error:.3f} "
          f"(signal std {clean.std():.3f})")
    print(ascii_plot(
        {"actual": clean[90:125], "imputed": filled[90:125]},
        title="Zero-shot imputation around the gap (t=100..111)", height=10,
    ))

    # --- anomaly detection --------------------------------------------------
    spiked = clean + 0.03 * rng.normal(size=220)
    spiked[160] += 3.0
    hits = detect_anomalies(spiked, config, threshold_quantile=0.99)
    print(f"\nanomaly detection: injected spike at t=160, flagged: {hits.tolist()}")

    # --- change-point detection ----------------------------------------------
    regime_a = np.sin(2 * np.pi * np.arange(110) / 20.0)
    regime_b = 2.0 + np.sin(2 * np.pi * np.arange(90) / 7.0)
    series = np.concatenate([regime_a, regime_b]) + 0.05 * rng.normal(size=200)
    changepoints = detect_changepoints(series, window=20, config=config)
    print(f"change-point detection: true break at t=110, "
          f"detected: {changepoints.tolist()}")


if __name__ == "__main__":
    main()

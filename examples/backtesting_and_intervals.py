#!/usr/bin/env python
"""Production workflow: plan the cost, backtest, forecast with bands.

Everything an adopting user does before trusting a forecaster in
production, on the Gas Rate dataset:

1. **Plan** — predict the exact token/time/dollar footprint of the
   configuration before spending anything (`plan_forecast`);
2. **Backtest** — rolling-origin evaluation over several windows instead
   of a single lucky split (`rolling_origin_evaluation`);
3. **Intervals** — conformally calibrated prediction bands with a
   distribution-free coverage target (`ConformalForecaster`), compared
   against the raw sample-ensemble band.

Run:  python examples/backtesting_and_intervals.py
"""

import numpy as np

from repro.core import ForecastSpec, MultiCastForecaster, plan_forecast
from repro.data import Dataset, gas_rate
from repro.evaluation import (
    ConformalForecaster,
    format_table,
    rolling_origin_evaluation,
)
from repro.metrics import interval_coverage


def main() -> None:
    dataset = gas_rate()
    horizon = 20
    spec = ForecastSpec(scheme="di", num_samples=5, seed=0)  # series comes later

    # 1 -- plan the cost before running anything
    plan = plan_forecast(spec.config, dataset.num_timestamps, dataset.num_dims, horizon)
    print("cost plan for one forecast call:")
    print(f"  prompt tokens            {plan.prompt_tokens}")
    print(f"  generated tokens total   {plan.generated_tokens}")
    print(f"  simulated inference time {plan.simulated_seconds:.0f}s "
          "(CPU-scale per the paper)")
    print(f"  hosted-API cost          ${plan.usd:.4f}\n")

    # 2 -- rolling-origin backtest across 3 windows
    rows = []
    for method in ("multicast-di", "theta", "naive"):
        options = {"spec": spec} if method.startswith("multicast") else {}
        backtest = rolling_origin_evaluation(
            method, dataset, horizon=horizon, num_windows=3, **options
        )
        mean = backtest.mean_rmse()
        std = backtest.std_rmse()
        rows.append([
            method,
            *(f"{mean[n]:.3f} ± {std[n]:.3f}" for n in dataset.dim_names),
        ])
        print(f"  backtested {method} over origins {backtest.origins}")
    print()
    print(format_table(
        ["method", *dataset.dim_names],
        rows,
        title=f"Rolling-origin RMSE (3 windows of {horizon})",
    ))

    # 3 -- calibrated intervals on a true holdout
    train = Dataset("train", dataset.values[:-horizon], dataset.dim_names)
    actual = np.asarray(dataset.values[-horizon:])

    conformal = ConformalForecaster(
        "multicast-di", level=0.8, calibration_windows=3, num_samples=5
    ).forecast(train, horizon)
    ensemble = MultiCastForecaster().forecast(
        spec.replace(series=np.asarray(train.values), horizon=horizon)
    )
    raw_lower, raw_upper = ensemble.interval(0.8)

    print("\n80% interval coverage on the held-out tail:")
    print(f"  conformal band: {interval_coverage(actual, conformal.lower, conformal.upper):.2f} "
          f"(mean width {conformal.width().mean():.2f})")
    print(f"  raw ensemble band: {interval_coverage(actual, raw_lower, raw_upper):.2f} "
          f"(mean width {(raw_upper - raw_lower).mean():.2f})")
    print("\nThe ensemble band reflects the model's own (often over-confident)"
          "\nspread; the conformal band is calibrated on actual residuals.")


if __name__ == "__main__":
    main()

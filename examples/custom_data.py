#!/usr/bin/env python
"""Bring your own data: CSV in, multivariate zero-shot forecast out.

Writes a small demo CSV (stand-in for your own export), loads it through
:func:`repro.data.load_csv`, and forecasts it — the complete workflow for
applying MultiCast to real data such as the original darts ``gasrate_co2``
file when network access is available.

Run:  python examples/custom_data.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import ForecastSpec, MultiCastForecaster
from repro.data import Dataset, load_csv, save_csv
from repro.metrics import per_dimension_report


def make_demo_csv(path: Path) -> None:
    """Pretend this is your sensor export: two coupled channels."""
    rng = np.random.default_rng(7)
    t = np.arange(180.0)
    demand = 40.0 + 8.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 0.8, 180)
    supply_temperature = 55.0 - 0.4 * demand + rng.normal(0, 0.5, 180)
    dataset = Dataset(
        name="district_heating",
        values=np.stack([demand, supply_temperature], axis=1),
        dim_names=("demand_mw", "supply_temp_c"),
    )
    save_csv(dataset, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "district_heating.csv"
        make_demo_csv(path)

        dataset = load_csv(path)
        print(f"loaded {dataset.name}: {dataset.num_timestamps} rows, "
              f"dims {dataset.dim_names}")

        history, future = dataset.train_test_split(test_fraction=0.15)
        spec = ForecastSpec(series=history, horizon=len(future),
                            scheme="di", num_samples=5, seed=0)
        output = MultiCastForecaster().forecast(spec)

        report = per_dimension_report(future, output.values, list(dataset.dim_names))
        for name, metrics in report.items():
            print(f"  {name}: rmse={metrics['rmse']:.3f}  "
                  f"mae={metrics['mae']:.3f}  smape={metrics['smape']:.1f}%")
        print(f"tokens used: {output.total_tokens} "
              f"(~${0.002 * output.total_tokens / 1000:.4f} at $0.002/1k)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: zero-shot multivariate forecasting in ten lines.

Forecasts the held-out tail of the (simulated) Box-Jenkins Gas Rate dataset
with MultiCast's value-interleaving scheme, reports per-dimension RMSE, and
draws the forecast-vs-actual overlay in the terminal.

Run:  python examples/quickstart.py
"""

from repro.core import ForecastSpec, MultiCastForecaster
from repro.data import gas_rate
from repro.evaluation import ascii_plot
from repro.metrics import rmse


def main() -> None:
    dataset = gas_rate()
    history, future = dataset.train_test_split(test_fraction=0.2)

    spec = ForecastSpec(series=history, horizon=len(future),
                        scheme="vi", num_samples=5, seed=0)
    output = MultiCastForecaster().forecast(spec)

    print(f"dataset: {dataset.name}  dims={dataset.num_dims}  "
          f"history={len(history)}  horizon={len(future)}")
    print(f"backend: {output.model_name}  samples={output.num_samples}")
    print(f"tokens:  prompt={output.prompt_tokens}  "
          f"generated={output.generated_tokens}")
    print(f"time:    simulated={output.simulated_seconds:.0f}s "
          f"(paper-scale CPU)  wall={output.wall_seconds:.2f}s\n")

    for k, name in enumerate(dataset.dim_names):
        error = rmse(future[:, k], output.values[:, k])
        print(f"RMSE[{name}] = {error:.3f}")

    print()
    print(ascii_plot(
        {"actual": future[:, 0], "multicast-vi": output.values[:, 0]},
        title=f"Gas Rate / {dataset.dim_names[0]}: actual vs forecast",
    ))


if __name__ == "__main__":
    main()
